open Spiral_util

let max_radix = 32

(* ------------------------------------------------------------------ *)
(* Preallocated scratch.  One record serves every codelet invocation of
   one worker: entry points receive it as their first argument instead of
   allocating per call, which keeps the steady-state hot path free of
   minor-heap traffic.  [stage] holds twiddle-scaled (or gathered) inputs,
   [out] the kernel result of generic codelets; [h1]/[h2] are the
   half-transform buffers of the recursive dft32/dft16 kernels ([h1] for
   the 32-point split, [h2] for the 16-point split, so dft32 can call
   dft16 without clobbering its own halves). *)

type scratch = {
  stage : float array;
  out : float array;
  h1 : float array;
  h2 : float array;
}

let make_scratch () =
  {
    stage = Array.make (2 * max_radix) 0.0;
    out = Array.make (2 * max_radix) 0.0;
    h1 = Array.make (2 * max_radix) 0.0;
    h2 = Array.make (2 * max_radix) 0.0;
  }

type t = {
  radix : int;
  flops : int;
  name : string;
  strided :
    scratch -> float array -> int -> int -> float array -> int -> int -> unit;
  strided_u : scratch -> float array -> int -> float array -> int -> unit;
  strided_tw :
    scratch -> float array -> int -> int -> float array -> int -> int ->
    float array -> int -> unit;
  strided_u_tw :
    scratch -> float array -> int -> float array -> int ->
    float array -> int -> unit;
  indexed :
    scratch -> float array -> int array -> int -> float array -> int array ->
    int -> unit;
  indexed_tw :
    scratch -> float array -> int array -> int -> float array -> int array ->
    int -> float array -> int -> unit;
}

(* Twiddle-scale [count] complex inputs into [stage]; monomorphic in the
   addressing so no closure is built on the hot path. *)
let scale_into_strided stage src g0 gl tw t0 count =
  for l = 0 to count - 1 do
    let s = g0 + (l * gl) in
    let xr = src.(2 * s) and xi = src.((2 * s) + 1) in
    let wr = tw.(2 * (t0 + l)) and wi = tw.((2 * (t0 + l)) + 1) in
    stage.(2 * l) <- (wr *. xr) -. (wi *. xi);
    stage.((2 * l) + 1) <- (wr *. xi) +. (wi *. xr)
  done

let scale_into_indexed stage src gidx gb tw t0 count =
  for l = 0 to count - 1 do
    let s = gidx.(gb + l) in
    let xr = src.(2 * s) and xi = src.((2 * s) + 1) in
    let wr = tw.(2 * (t0 + l)) and wi = tw.((2 * (t0 + l)) + 1) in
    stage.(2 * l) <- (wr *. xr) -. (wi *. xi);
    stage.((2 * l) + 1) <- (wr *. xi) +. (wi *. xr)
  done

(* ------------------------------------------------------------------ *)
(* Generic construction from a local contiguous kernel. *)

let make ~radix ~flops ~name compute =
  if radix > max_radix then
    invalid_arg
      (Printf.sprintf "Codelet.make: radix %d exceeds max_radix %d" radix
         max_radix);
  let r = radix in
  let strided cs src g0 gl dst s0 sl =
    let stage = cs.stage and out = cs.out in
    for l = 0 to r - 1 do
      let s = g0 + (l * gl) in
      stage.(2 * l) <- src.(2 * s);
      stage.((2 * l) + 1) <- src.((2 * s) + 1)
    done;
    compute stage out;
    for l = 0 to r - 1 do
      let d = s0 + (l * sl) in
      dst.(2 * d) <- out.(2 * l);
      dst.((2 * d) + 1) <- out.((2 * l) + 1)
    done
  in
  {
    radix;
    flops;
    name;
    strided;
    strided_u =
      (fun cs src g0 dst s0 ->
        Array.blit src (2 * g0) cs.stage 0 (2 * r);
        compute cs.stage cs.out;
        Array.blit cs.out 0 dst (2 * s0) (2 * r));
    strided_tw =
      (fun cs src g0 gl dst s0 sl tw t0 ->
        scale_into_strided cs.stage src g0 gl tw t0 r;
        compute cs.stage cs.out;
        let out = cs.out in
        for l = 0 to r - 1 do
          let d = s0 + (l * sl) in
          dst.(2 * d) <- out.(2 * l);
          dst.((2 * d) + 1) <- out.((2 * l) + 1)
        done);
    strided_u_tw =
      (fun cs src g0 dst s0 tw t0 ->
        scale_into_strided cs.stage src g0 1 tw t0 r;
        compute cs.stage cs.out;
        Array.blit cs.out 0 dst (2 * s0) (2 * r));
    indexed =
      (fun cs src gidx gb dst sidx sb ->
        let stage = cs.stage and out = cs.out in
        for l = 0 to r - 1 do
          let s = gidx.(gb + l) in
          stage.(2 * l) <- src.(2 * s);
          stage.((2 * l) + 1) <- src.((2 * s) + 1)
        done;
        compute stage out;
        for l = 0 to r - 1 do
          let d = sidx.(sb + l) in
          dst.(2 * d) <- out.(2 * l);
          dst.((2 * d) + 1) <- out.((2 * l) + 1)
        done);
    indexed_tw =
      (fun cs src gidx gb dst sidx sb tw t0 ->
        scale_into_indexed cs.stage src gidx gb tw t0 r;
        compute cs.stage cs.out;
        let out = cs.out in
        for l = 0 to r - 1 do
          let d = sidx.(sb + l) in
          dst.(2 * d) <- out.(2 * l);
          dst.((2 * d) + 1) <- out.((2 * l) + 1)
        done);
  }

(* ------------------------------------------------------------------ *)
(* Unrolled DFT kernels.  Each body takes resolved complex-element
   indices; the entry points compute those indices with inline stride
   arithmetic (no closures).  Bodies never alias src and dst (plans
   ping-pong buffers). *)

let dft2_body src i0 i1 dst o0 o1 =
  let x0r = src.(2 * i0) and x0i = src.((2 * i0) + 1) in
  let x1r = src.(2 * i1) and x1i = src.((2 * i1) + 1) in
  dst.(2 * o0) <- x0r +. x1r;
  dst.((2 * o0) + 1) <- x0i +. x1i;
  dst.(2 * o1) <- x0r -. x1r;
  dst.((2 * o1) + 1) <- x0i -. x1i

let dft2_body_tw src i0 i1 tw t0 dst o0 o1 =
  let w0r = tw.(2 * t0) and w0i = tw.((2 * t0) + 1) in
  let w1r = tw.(2 * (t0 + 1)) and w1i = tw.((2 * (t0 + 1)) + 1) in
  let a0r = src.(2 * i0) and a0i = src.((2 * i0) + 1) in
  let a1r = src.(2 * i1) and a1i = src.((2 * i1) + 1) in
  let x0r = (w0r *. a0r) -. (w0i *. a0i) and x0i = (w0r *. a0i) +. (w0i *. a0r) in
  let x1r = (w1r *. a1r) -. (w1i *. a1i) and x1i = (w1r *. a1i) +. (w1i *. a1r) in
  dst.(2 * o0) <- x0r +. x1r;
  dst.((2 * o0) + 1) <- x0i +. x1i;
  dst.(2 * o1) <- x0r -. x1r;
  dst.((2 * o1) + 1) <- x0i -. x1i

let sqrt3_2 = sqrt 3.0 /. 2.0

let dft3_body src i0 i1 i2 dst o0 o1 o2 =
  let x0r = src.(2 * i0) and x0i = src.((2 * i0) + 1) in
  let x1r = src.(2 * i1) and x1i = src.((2 * i1) + 1) in
  let x2r = src.(2 * i2) and x2i = src.((2 * i2) + 1) in
  let tr = x1r +. x2r and ti = x1i +. x2i in
  let ur = x1r -. x2r and ui = x1i -. x2i in
  let ar = x0r -. (0.5 *. tr) and ai = x0i -. (0.5 *. ti) in
  let br = sqrt3_2 *. ur and bi = sqrt3_2 *. ui in
  dst.(2 * o0) <- x0r +. tr;
  dst.((2 * o0) + 1) <- x0i +. ti;
  (* y1 = a - i*b, y2 = a + i*b *)
  dst.(2 * o1) <- ar +. bi;
  dst.((2 * o1) + 1) <- ai -. br;
  dst.(2 * o2) <- ar -. bi;
  dst.((2 * o2) + 1) <- ai +. br

let dft4_body src i0 i1 i2 i3 dst o0 o1 o2 o3 =
  let x0r = src.(2 * i0) and x0i = src.((2 * i0) + 1) in
  let x1r = src.(2 * i1) and x1i = src.((2 * i1) + 1) in
  let x2r = src.(2 * i2) and x2i = src.((2 * i2) + 1) in
  let x3r = src.(2 * i3) and x3i = src.((2 * i3) + 1) in
  let t0r = x0r +. x2r and t0i = x0i +. x2i in
  let t1r = x0r -. x2r and t1i = x0i -. x2i in
  let t2r = x1r +. x3r and t2i = x1i +. x3i in
  let t3r = x1r -. x3r and t3i = x1i -. x3i in
  dst.(2 * o0) <- t0r +. t2r;
  dst.((2 * o0) + 1) <- t0i +. t2i;
  dst.(2 * o2) <- t0r -. t2r;
  dst.((2 * o2) + 1) <- t0i -. t2i;
  (* y1 = t1 - i*t3, y3 = t1 + i*t3 *)
  dst.(2 * o1) <- t1r +. t3i;
  dst.((2 * o1) + 1) <- t1i -. t3r;
  dst.(2 * o3) <- t1r -. t3i;
  dst.((2 * o3) + 1) <- t1i +. t3r

let sqrt1_2 = sqrt 0.5

(* DFT_8 as decimation in time: two DFT_4 on even/odd inputs, then
   twiddled butterflies with w8^k, k = 0..3. *)
let dft8_body src i0 i1 i2 i3 i4 i5 i6 i7 dst o0 o1 o2 o3 o4 o5 o6 o7 =
  (* DFT_4 over the even inputs (x0 x2 x4 x6) *)
  let x0r = src.(2 * i0) and x0i = src.((2 * i0) + 1) in
  let x2r = src.(2 * i2) and x2i = src.((2 * i2) + 1) in
  let x4r = src.(2 * i4) and x4i = src.((2 * i4) + 1) in
  let x6r = src.(2 * i6) and x6i = src.((2 * i6) + 1) in
  let t0r = x0r +. x4r and t0i = x0i +. x4i in
  let t1r = x0r -. x4r and t1i = x0i -. x4i in
  let t2r = x2r +. x6r and t2i = x2i +. x6i in
  let t3r = x2r -. x6r and t3i = x2i -. x6i in
  let e0r = t0r +. t2r and e0i = t0i +. t2i in
  let e2r = t0r -. t2r and e2i = t0i -. t2i in
  let e1r = t1r +. t3i and e1i = t1i -. t3r in
  let e3r = t1r -. t3i and e3i = t1i +. t3r in
  (* DFT_4 over the odd inputs (x1 x3 x5 x7) *)
  let x1r = src.(2 * i1) and x1i = src.((2 * i1) + 1) in
  let x3r = src.(2 * i3) and x3i = src.((2 * i3) + 1) in
  let x5r = src.(2 * i5) and x5i = src.((2 * i5) + 1) in
  let x7r = src.(2 * i7) and x7i = src.((2 * i7) + 1) in
  let u0r = x1r +. x5r and u0i = x1i +. x5i in
  let u1r = x1r -. x5r and u1i = x1i -. x5i in
  let u2r = x3r +. x7r and u2i = x3i +. x7i in
  let u3r = x3r -. x7r and u3i = x3i -. x7i in
  let f0r = u0r +. u2r and f0i = u0i +. u2i in
  let f2r = u0r -. u2r and f2i = u0i -. u2i in
  let f1r = u1r +. u3i and f1i = u1i -. u3r in
  let f3r = u1r -. u3i and f3i = u1i +. u3r in
  (* k = 0: w = 1 *)
  dst.(2 * o0) <- e0r +. f0r;
  dst.((2 * o0) + 1) <- e0i +. f0i;
  dst.(2 * o4) <- e0r -. f0r;
  dst.((2 * o4) + 1) <- e0i -. f0i;
  (* k = 1: w = (1 - i)/sqrt 2;  w*f = s*((fr + fi) + i(fi - fr)) *)
  let w1r = sqrt1_2 *. (f1r +. f1i) and w1i = sqrt1_2 *. (f1i -. f1r) in
  dst.(2 * o1) <- e1r +. w1r;
  dst.((2 * o1) + 1) <- e1i +. w1i;
  dst.(2 * o5) <- e1r -. w1r;
  dst.((2 * o5) + 1) <- e1i -. w1i;
  (* k = 2: w = -i;  w*f = fi - i*fr *)
  dst.(2 * o2) <- e2r +. f2i;
  dst.((2 * o2) + 1) <- e2i -. f2r;
  dst.(2 * o6) <- e2r -. f2i;
  dst.((2 * o6) + 1) <- e2i +. f2r;
  (* k = 3: w = (-1 - i)/sqrt 2;  w*f = s*((fi - fr) - i(fr + fi)) *)
  let w3r = sqrt1_2 *. (f3i -. f3r) and w3i = -.sqrt1_2 *. (f3r +. f3i) in
  dst.(2 * o3) <- e3r +. w3r;
  dst.((2 * o3) + 1) <- e3i +. w3i;
  dst.(2 * o7) <- e3r -. w3r;
  dst.((2 * o7) + 1) <- e3i -. w3i

(* w16^k for k = 0..7: cos/sin of -2 pi k / 16.  Trivial entries (k = 0,
   4) go through the same multiply so the butterfly loop stays
   branch-free; the products are exact so results are bit-identical to a
   specialized butterfly. *)
let c16_1 = 0.92387953251128675613
let s16_1 = -0.38268343236508977173
let c16_3 = 0.38268343236508977173
let s16_3 = -0.92387953251128675613

let w16r =
  [| 1.0; c16_1; sqrt1_2; c16_3; 0.0; -.c16_3; -.sqrt1_2; -.c16_1 |]

let w16i = [| 0.0; s16_1; -.sqrt1_2; s16_3; -1.0; s16_3; -.sqrt1_2; s16_1 |]

(* DFT_16 as radix-2 DIT over two DFT_8 through the [h2] scratch half
   buffers: y[k] = E[k] + w16^k O[k], y[k+8] = E[k] - w16^k O[k]. *)
let dft16_core cs src g0 gl dst s0 sl =
  let h = cs.h2 in
  dft8_body src g0
    (g0 + (2 * gl)) (g0 + (4 * gl)) (g0 + (6 * gl)) (g0 + (8 * gl))
    (g0 + (10 * gl)) (g0 + (12 * gl)) (g0 + (14 * gl))
    h 0 1 2 3 4 5 6 7;
  dft8_body src (g0 + gl)
    (g0 + (3 * gl)) (g0 + (5 * gl)) (g0 + (7 * gl)) (g0 + (9 * gl))
    (g0 + (11 * gl)) (g0 + (13 * gl)) (g0 + (15 * gl))
    h 8 9 10 11 12 13 14 15;
  for k = 0 to 7 do
    let wr = w16r.(k) and wi = w16i.(k) in
    let er = h.(2 * k) and ei = h.((2 * k) + 1) in
    let xr = h.(2 * (k + 8)) and xi = h.((2 * (k + 8)) + 1) in
    let tr = (wr *. xr) -. (wi *. xi) and ti = (wr *. xi) +. (wi *. xr) in
    let d0 = s0 + (k * sl) and d1 = s0 + ((k + 8) * sl) in
    dst.(2 * d0) <- er +. tr;
    dst.((2 * d0) + 1) <- ei +. ti;
    dst.(2 * d1) <- er -. tr;
    dst.((2 * d1) + 1) <- ei -. ti
  done

(* w32^k for k = 0..15, split real/imaginary (flat float arrays, no boxed
   tuples on the hot path). *)
let w32r =
  Array.init 16 (fun k -> cos (-2.0 *. Float.pi *. float_of_int k /. 32.0))

let w32i =
  Array.init 16 (fun k -> sin (-2.0 *. Float.pi *. float_of_int k /. 32.0))

(* DFT_32 as radix-2 DIT over two DFT_16 through [h1] (dft16_core uses
   [h2], so the halves survive the recursive calls). *)
let dft32_core cs src g0 gl dst s0 sl =
  let h = cs.h1 in
  dft16_core cs src g0 (2 * gl) h 0 1;
  dft16_core cs src (g0 + gl) (2 * gl) h 16 1;
  for k = 0 to 15 do
    let wr = w32r.(k) and wi = w32i.(k) in
    let er = h.(2 * k) and ei = h.((2 * k) + 1) in
    let xr = h.(2 * (k + 16)) and xi = h.((2 * (k + 16)) + 1) in
    let tr = (wr *. xr) -. (wi *. xi) and ti = (wr *. xi) +. (wi *. xr) in
    let d0 = s0 + (k * sl) and d1 = s0 + ((k + 16) * sl) in
    dst.(2 * d0) <- er +. tr;
    dst.((2 * d0) + 1) <- ei +. ti;
    dst.(2 * d1) <- er -. tr;
    dst.((2 * d1) + 1) <- ei -. ti
  done

(* ------------------------------------------------------------------ *)
(* Codelet values. *)

let dft1_codelet =
  {
    radix = 1;
    flops = 0;
    name = "dft1";
    strided =
      (fun _cs src g0 _gl dst s0 _sl ->
        dst.(2 * s0) <- src.(2 * g0);
        dst.((2 * s0) + 1) <- src.((2 * g0) + 1));
    strided_u =
      (fun _cs src g0 dst s0 ->
        dst.(2 * s0) <- src.(2 * g0);
        dst.((2 * s0) + 1) <- src.((2 * g0) + 1));
    strided_tw =
      (fun _cs src g0 _gl dst s0 _sl tw t0 ->
        let xr = src.(2 * g0) and xi = src.((2 * g0) + 1) in
        let wr = tw.(2 * t0) and wi = tw.((2 * t0) + 1) in
        dst.(2 * s0) <- (wr *. xr) -. (wi *. xi);
        dst.((2 * s0) + 1) <- (wr *. xi) +. (wi *. xr));
    strided_u_tw =
      (fun _cs src g0 dst s0 tw t0 ->
        let xr = src.(2 * g0) and xi = src.((2 * g0) + 1) in
        let wr = tw.(2 * t0) and wi = tw.((2 * t0) + 1) in
        dst.(2 * s0) <- (wr *. xr) -. (wi *. xi);
        dst.((2 * s0) + 1) <- (wr *. xi) +. (wi *. xr));
    indexed =
      (fun _cs src gidx gb dst sidx sb ->
        let g = gidx.(gb) and s = sidx.(sb) in
        dst.(2 * s) <- src.(2 * g);
        dst.((2 * s) + 1) <- src.((2 * g) + 1));
    indexed_tw =
      (fun _cs src gidx gb dst sidx sb tw t0 ->
        let g = gidx.(gb) and s = sidx.(sb) in
        let xr = src.(2 * g) and xi = src.((2 * g) + 1) in
        let wr = tw.(2 * t0) and wi = tw.((2 * t0) + 1) in
        dst.(2 * s) <- (wr *. xr) -. (wi *. xi);
        dst.((2 * s) + 1) <- (wr *. xi) +. (wi *. xr));
  }

let dft2_codelet =
  {
    radix = 2;
    flops = 4;
    name = "dft2";
    strided =
      (fun _cs src g0 gl dst s0 sl -> dft2_body src g0 (g0 + gl) dst s0 (s0 + sl));
    strided_u =
      (fun _cs src g0 dst s0 -> dft2_body src g0 (g0 + 1) dst s0 (s0 + 1));
    strided_tw =
      (fun _cs src g0 gl dst s0 sl tw t0 ->
        dft2_body_tw src g0 (g0 + gl) tw t0 dst s0 (s0 + sl));
    strided_u_tw =
      (fun _cs src g0 dst s0 tw t0 ->
        dft2_body_tw src g0 (g0 + 1) tw t0 dst s0 (s0 + 1));
    indexed =
      (fun _cs src gidx gb dst sidx sb ->
        dft2_body src gidx.(gb) gidx.(gb + 1) dst sidx.(sb) sidx.(sb + 1));
    indexed_tw =
      (fun _cs src gidx gb dst sidx sb tw t0 ->
        dft2_body_tw src gidx.(gb) gidx.(gb + 1) tw t0 dst sidx.(sb)
          sidx.(sb + 1));
  }

let dft3_codelet =
  {
    radix = 3;
    flops = 16;
    name = "dft3";
    strided =
      (fun _cs src g0 gl dst s0 sl ->
        dft3_body src g0 (g0 + gl) (g0 + (2 * gl)) dst s0 (s0 + sl)
          (s0 + (2 * sl)));
    strided_u =
      (fun _cs src g0 dst s0 ->
        dft3_body src g0 (g0 + 1) (g0 + 2) dst s0 (s0 + 1) (s0 + 2));
    strided_tw =
      (fun cs src g0 gl dst s0 sl tw t0 ->
        scale_into_strided cs.stage src g0 gl tw t0 3;
        dft3_body cs.stage 0 1 2 dst s0 (s0 + sl) (s0 + (2 * sl)));
    strided_u_tw =
      (fun cs src g0 dst s0 tw t0 ->
        scale_into_strided cs.stage src g0 1 tw t0 3;
        dft3_body cs.stage 0 1 2 dst s0 (s0 + 1) (s0 + 2));
    indexed =
      (fun _cs src gidx gb dst sidx sb ->
        dft3_body src gidx.(gb) gidx.(gb + 1) gidx.(gb + 2) dst sidx.(sb)
          sidx.(sb + 1) sidx.(sb + 2));
    indexed_tw =
      (fun cs src gidx gb dst sidx sb tw t0 ->
        scale_into_indexed cs.stage src gidx gb tw t0 3;
        dft3_body cs.stage 0 1 2 dst sidx.(sb) sidx.(sb + 1) sidx.(sb + 2));
  }

let dft4_codelet =
  {
    radix = 4;
    flops = 16;
    name = "dft4";
    strided =
      (fun _cs src g0 gl dst s0 sl ->
        dft4_body src g0 (g0 + gl) (g0 + (2 * gl)) (g0 + (3 * gl)) dst s0
          (s0 + sl) (s0 + (2 * sl)) (s0 + (3 * sl)));
    strided_u =
      (fun _cs src g0 dst s0 ->
        dft4_body src g0 (g0 + 1) (g0 + 2) (g0 + 3) dst s0 (s0 + 1) (s0 + 2)
          (s0 + 3));
    strided_tw =
      (fun cs src g0 gl dst s0 sl tw t0 ->
        scale_into_strided cs.stage src g0 gl tw t0 4;
        dft4_body cs.stage 0 1 2 3 dst s0 (s0 + sl) (s0 + (2 * sl))
          (s0 + (3 * sl)));
    strided_u_tw =
      (fun cs src g0 dst s0 tw t0 ->
        scale_into_strided cs.stage src g0 1 tw t0 4;
        dft4_body cs.stage 0 1 2 3 dst s0 (s0 + 1) (s0 + 2) (s0 + 3));
    indexed =
      (fun _cs src gidx gb dst sidx sb ->
        dft4_body src gidx.(gb) gidx.(gb + 1) gidx.(gb + 2) gidx.(gb + 3) dst
          sidx.(sb) sidx.(sb + 1) sidx.(sb + 2) sidx.(sb + 3));
    indexed_tw =
      (fun cs src gidx gb dst sidx sb tw t0 ->
        scale_into_indexed cs.stage src gidx gb tw t0 4;
        dft4_body cs.stage 0 1 2 3 dst sidx.(sb) sidx.(sb + 1) sidx.(sb + 2)
          sidx.(sb + 3));
  }

let dft8_codelet =
  {
    radix = 8;
    flops = 56;
    name = "dft8";
    strided =
      (fun _cs src g0 gl dst s0 sl ->
        dft8_body src g0 (g0 + gl) (g0 + (2 * gl)) (g0 + (3 * gl))
          (g0 + (4 * gl)) (g0 + (5 * gl)) (g0 + (6 * gl)) (g0 + (7 * gl))
          dst s0 (s0 + sl) (s0 + (2 * sl)) (s0 + (3 * sl)) (s0 + (4 * sl))
          (s0 + (5 * sl)) (s0 + (6 * sl)) (s0 + (7 * sl)));
    strided_u =
      (fun _cs src g0 dst s0 ->
        dft8_body src g0 (g0 + 1) (g0 + 2) (g0 + 3) (g0 + 4) (g0 + 5) (g0 + 6)
          (g0 + 7) dst s0 (s0 + 1) (s0 + 2) (s0 + 3) (s0 + 4) (s0 + 5)
          (s0 + 6) (s0 + 7));
    strided_tw =
      (fun cs src g0 gl dst s0 sl tw t0 ->
        scale_into_strided cs.stage src g0 gl tw t0 8;
        dft8_body cs.stage 0 1 2 3 4 5 6 7 dst s0 (s0 + sl) (s0 + (2 * sl))
          (s0 + (3 * sl)) (s0 + (4 * sl)) (s0 + (5 * sl)) (s0 + (6 * sl))
          (s0 + (7 * sl)));
    strided_u_tw =
      (fun cs src g0 dst s0 tw t0 ->
        scale_into_strided cs.stage src g0 1 tw t0 8;
        dft8_body cs.stage 0 1 2 3 4 5 6 7 dst s0 (s0 + 1) (s0 + 2) (s0 + 3)
          (s0 + 4) (s0 + 5) (s0 + 6) (s0 + 7));
    indexed =
      (fun cs src gidx gb dst sidx sb ->
        let stage = cs.stage in
        for l = 0 to 7 do
          let s = gidx.(gb + l) in
          stage.(2 * l) <- src.(2 * s);
          stage.((2 * l) + 1) <- src.((2 * s) + 1)
        done;
        dft8_body stage 0 1 2 3 4 5 6 7 cs.out 0 1 2 3 4 5 6 7;
        let out = cs.out in
        for l = 0 to 7 do
          let d = sidx.(sb + l) in
          dst.(2 * d) <- out.(2 * l);
          dst.((2 * d) + 1) <- out.((2 * l) + 1)
        done);
    indexed_tw =
      (fun cs src gidx gb dst sidx sb tw t0 ->
        scale_into_indexed cs.stage src gidx gb tw t0 8;
        dft8_body cs.stage 0 1 2 3 4 5 6 7 cs.out 0 1 2 3 4 5 6 7;
        let out = cs.out in
        for l = 0 to 7 do
          let d = sidx.(sb + l) in
          dst.(2 * d) <- out.(2 * l);
          dst.((2 * d) + 1) <- out.((2 * l) + 1)
        done);
  }

(* Gather / compute-to-[out] / scatter, for the indexed entry points of
   the recursive kernels (rare path: bit-reversal style fallbacks). *)
let indexed_via_core core r cs src gidx gb dst sidx sb =
  let stage = cs.stage in
  for l = 0 to r - 1 do
    let s = gidx.(gb + l) in
    stage.(2 * l) <- src.(2 * s);
    stage.((2 * l) + 1) <- src.((2 * s) + 1)
  done;
  core cs stage 0 1 cs.out 0 1;
  let out = cs.out in
  for l = 0 to r - 1 do
    let d = sidx.(sb + l) in
    dst.(2 * d) <- out.(2 * l);
    dst.((2 * d) + 1) <- out.((2 * l) + 1)
  done

let dft16_codelet =
  (* flops: 2 x dft8 (112) + 8 butterflies: 2 trivial (w = 1, -i: 4 each)
     + 6 twiddled (10 each) = 112 + 8 + 60 = 180 *)
  {
    radix = 16;
    flops = 180;
    name = "dft16";
    strided = (fun cs src g0 gl dst s0 sl -> dft16_core cs src g0 gl dst s0 sl);
    strided_u = (fun cs src g0 dst s0 -> dft16_core cs src g0 1 dst s0 1);
    strided_tw =
      (fun cs src g0 gl dst s0 sl tw t0 ->
        scale_into_strided cs.stage src g0 gl tw t0 16;
        dft16_core cs cs.stage 0 1 dst s0 sl);
    strided_u_tw =
      (fun cs src g0 dst s0 tw t0 ->
        scale_into_strided cs.stage src g0 1 tw t0 16;
        dft16_core cs cs.stage 0 1 dst s0 1);
    indexed =
      (fun cs src gidx gb dst sidx sb ->
        indexed_via_core dft16_core 16 cs src gidx gb dst sidx sb);
    indexed_tw =
      (fun cs src gidx gb dst sidx sb tw t0 ->
        scale_into_indexed cs.stage src gidx gb tw t0 16;
        dft16_core cs cs.stage 0 1 cs.out 0 1;
        let out = cs.out in
        for l = 0 to 15 do
          let d = sidx.(sb + l) in
          dst.(2 * d) <- out.(2 * l);
          dst.((2 * d) + 1) <- out.((2 * l) + 1)
        done);
  }

let dft32_codelet =
  (* flops: 2 x dft16 (360) + 16 butterflies at <= 10 flops: ~508 *)
  {
    radix = 32;
    flops = 508;
    name = "dft32";
    strided = (fun cs src g0 gl dst s0 sl -> dft32_core cs src g0 gl dst s0 sl);
    strided_u = (fun cs src g0 dst s0 -> dft32_core cs src g0 1 dst s0 1);
    strided_tw =
      (fun cs src g0 gl dst s0 sl tw t0 ->
        scale_into_strided cs.stage src g0 gl tw t0 32;
        dft32_core cs cs.stage 0 1 dst s0 sl);
    strided_u_tw =
      (fun cs src g0 dst s0 tw t0 ->
        scale_into_strided cs.stage src g0 1 tw t0 32;
        dft32_core cs cs.stage 0 1 dst s0 1);
    indexed =
      (fun cs src gidx gb dst sidx sb ->
        indexed_via_core dft32_core 32 cs src gidx gb dst sidx sb);
    indexed_tw =
      (fun cs src gidx gb dst sidx sb tw t0 ->
        scale_into_indexed cs.stage src gidx gb tw t0 32;
        dft32_core cs cs.stage 0 1 cs.out 0 1;
        let out = cs.out in
        for l = 0 to 31 do
          let d = sidx.(sb + l) in
          dst.(2 * d) <- out.(2 * l);
          dst.((2 * d) + 1) <- out.((2 * l) + 1)
        done);
  }

(* ------------------------------------------------------------------ *)
(* Kernel compute functions shared by the current and legacy generic
   codelets. *)

(* Direct matrix-vector product against the precomputed DFT matrix: the
   fallback for radices without an unrolled kernel. *)
let dft_generic_compute r =
  let mat =
    Array.init (r * r) (fun idx ->
        Twiddle.omega_pow ~n:r ~k:(idx / r) ~l:(idx mod r))
  in
  fun inp out ->
    for k = 0 to r - 1 do
      let accr = ref 0.0 and acci = ref 0.0 in
      for l = 0 to r - 1 do
        let w = mat.((k * r) + l) in
        let xr = inp.(2 * l) and xi = inp.((2 * l) + 1) in
        accr := !accr +. (w.Complex.re *. xr) -. (w.Complex.im *. xi);
        acci := !acci +. (w.Complex.re *. xi) +. (w.Complex.im *. xr)
      done;
      out.(2 * k) <- !accr;
      out.((2 * k) + 1) <- !acci
    done

let wht_compute r inp out =
  Array.blit inp 0 out 0 (2 * r);
  (* log2 r stages of in-place butterflies at doubling distance *)
  let h = ref 1 in
  while !h < r do
    let step = 2 * !h in
    let b = ref 0 in
    while !b < r do
      for j = !b to !b + !h - 1 do
        let ar = out.(2 * j) and ai = out.((2 * j) + 1) in
        let br = out.(2 * (j + !h)) and bi = out.((2 * (j + !h)) + 1) in
        out.(2 * j) <- ar +. br;
        out.((2 * j) + 1) <- ai +. bi;
        out.(2 * (j + !h)) <- ar -. br;
        out.((2 * (j + !h)) + 1) <- ai -. bi
      done;
      b := !b + step
    done;
    h := step
  done

let copy_compute r inp out = Array.blit inp 0 out 0 (2 * r)

let dft_generic r =
  make ~radix:r
    ~flops:((8 * r * r) - (2 * r))
    ~name:(Printf.sprintf "dft%d_generic" r)
    (dft_generic_compute r)

let dft_table : (int, t) Hashtbl.t = Hashtbl.create 16

let dft r =
  if r < 1 || r > max_radix then
    invalid_arg (Printf.sprintf "Codelet.dft: radix %d outside [1, %d]" r max_radix);
  match Hashtbl.find_opt dft_table r with
  | Some c -> c
  | None ->
      let c =
        match r with
        | 1 -> dft1_codelet
        | 2 -> dft2_codelet
        | 3 -> dft3_codelet
        | 4 -> dft4_codelet
        | 8 -> dft8_codelet
        | 16 -> dft16_codelet
        | 32 -> dft32_codelet
        | r -> dft_generic r
      in
      Hashtbl.add dft_table r c;
      c

let wht r =
  if not (Int_util.is_pow2 r) then invalid_arg "Codelet.wht: radix must be 2^k";
  if r > max_radix then invalid_arg "Codelet.wht: radix too large";
  let k = Int_util.ilog2 r in
  make ~radix:r ~flops:(2 * r * k) ~name:(Printf.sprintf "wht%d" r)
    (wht_compute r)

let copy r =
  make ~radix:r ~flops:0 ~name:(Printf.sprintf "copy%d" r) (copy_compute r)

(* ------------------------------------------------------------------ *)
(* Legacy (pre-optimization) codelets: per-call scratch allocation and
   closure-based addressing, exactly as the interpreter originally
   executed them.  They satisfy the current interface (the scratch
   argument is ignored) and are the measured baseline of the wall-clock
   benchmark ablation ([bench --json]) and a reference implementation in
   tests.  Do not use them on any production path. *)

module Legacy = struct
  let scale_into src idx tw t0 scratch count =
    for l = 0 to count - 1 do
      let s = idx l in
      let xr = src.(2 * s) and xi = src.((2 * s) + 1) in
      let wr = tw.(2 * (t0 + l)) and wi = tw.((2 * (t0 + l)) + 1) in
      scratch.(2 * l) <- (wr *. xr) -. (wi *. xi);
      scratch.((2 * l) + 1) <- (wr *. xi) +. (wi *. xr)
    done

  let make ~radix ~flops ~name compute =
    let r = radix in
    let load_plain src f =
      let inp = Array.make (2 * r) 0.0 in
      for l = 0 to r - 1 do
        let s = f l in
        inp.(2 * l) <- src.(2 * s);
        inp.((2 * l) + 1) <- src.((2 * s) + 1)
      done;
      inp
    in
    let load_tw src f tw t0 =
      let inp = Array.make (2 * r) 0.0 in
      for l = 0 to r - 1 do
        let s = f l in
        let xr = src.(2 * s) and xi = src.((2 * s) + 1) in
        let wr = tw.(2 * (t0 + l)) and wi = tw.((2 * (t0 + l)) + 1) in
        inp.(2 * l) <- (wr *. xr) -. (wi *. xi);
        inp.((2 * l) + 1) <- (wr *. xi) +. (wi *. xr)
      done;
      inp
    in
    let store dst f out =
      for l = 0 to r - 1 do
        let d = f l in
        dst.(2 * d) <- out.(2 * l);
        dst.((2 * d) + 1) <- out.((2 * l) + 1)
      done
    in
    let run inp dst f =
      let out = Array.make (2 * r) 0.0 in
      compute inp out;
      store dst f out
    in
    let strided _cs src g0 gl dst s0 sl =
      run (load_plain src (fun l -> g0 + (l * gl))) dst (fun l -> s0 + (l * sl))
    in
    let strided_tw _cs src g0 gl dst s0 sl tw t0 =
      run (load_tw src (fun l -> g0 + (l * gl)) tw t0) dst
        (fun l -> s0 + (l * sl))
    in
    {
      radix;
      flops;
      name;
      strided;
      strided_u = (fun cs src g0 dst s0 -> strided cs src g0 1 dst s0 1);
      strided_tw;
      strided_u_tw =
        (fun cs src g0 dst s0 tw t0 -> strided_tw cs src g0 1 dst s0 1 tw t0);
      indexed =
        (fun _cs src gidx gb dst sidx sb ->
          run (load_plain src (fun l -> gidx.(gb + l))) dst
            (fun l -> sidx.(sb + l)));
      indexed_tw =
        (fun _cs src gidx gb dst sidx sb tw t0 ->
          run (load_tw src (fun l -> gidx.(gb + l)) tw t0) dst
            (fun l -> sidx.(sb + l)));
    }

  let dft3 =
    let tw_wrap src idx tw t0 dst o0 o1 o2 =
      let scratch = Array.make 6 0.0 in
      scale_into src idx tw t0 scratch 3;
      dft3_body scratch 0 1 2 dst o0 o1 o2
    in
    let strided_tw _cs src g0 gl dst s0 sl tw t0 =
      tw_wrap src (fun l -> g0 + (l * gl)) tw t0 dst s0 (s0 + sl)
        (s0 + (2 * sl))
    in
    {
      dft3_codelet with
      strided_tw;
      strided_u_tw =
        (fun cs src g0 dst s0 tw t0 -> strided_tw cs src g0 1 dst s0 1 tw t0);
      indexed_tw =
        (fun _cs src gidx gb dst sidx sb tw t0 ->
          tw_wrap src (fun l -> gidx.(gb + l)) tw t0 dst sidx.(sb)
            sidx.(sb + 1) sidx.(sb + 2));
    }

  let dft4 =
    let tw_wrap src idx tw t0 dst o0 o1 o2 o3 =
      let scratch = Array.make 8 0.0 in
      scale_into src idx tw t0 scratch 4;
      dft4_body scratch 0 1 2 3 dst o0 o1 o2 o3
    in
    let strided_tw _cs src g0 gl dst s0 sl tw t0 =
      tw_wrap src (fun l -> g0 + (l * gl)) tw t0 dst s0 (s0 + sl)
        (s0 + (2 * sl)) (s0 + (3 * sl))
    in
    {
      dft4_codelet with
      strided_tw;
      strided_u_tw =
        (fun cs src g0 dst s0 tw t0 -> strided_tw cs src g0 1 dst s0 1 tw t0);
      indexed_tw =
        (fun _cs src gidx gb dst sidx sb tw t0 ->
          tw_wrap src (fun l -> gidx.(gb + l)) tw t0 dst sidx.(sb)
            sidx.(sb + 1) sidx.(sb + 2) sidx.(sb + 3));
    }

  let dft8 =
    let body8 src i dst o =
      dft8_body src (i 0) (i 1) (i 2) (i 3) (i 4) (i 5) (i 6) (i 7) dst (o 0)
        (o 1) (o 2) (o 3) (o 4) (o 5) (o 6) (o 7)
    in
    let tw_wrap src idx tw t0 dst o =
      let scratch = Array.make 16 0.0 in
      scale_into src idx tw t0 scratch 8;
      body8 scratch (fun l -> l) dst o
    in
    let strided _cs src g0 gl dst s0 sl =
      body8 src (fun l -> g0 + (l * gl)) dst (fun l -> s0 + (l * sl))
    in
    let strided_tw _cs src g0 gl dst s0 sl tw t0 =
      tw_wrap src (fun l -> g0 + (l * gl)) tw t0 dst (fun l -> s0 + (l * sl))
    in
    {
      dft8_codelet with
      strided;
      strided_u = (fun cs src g0 dst s0 -> strided cs src g0 1 dst s0 1);
      strided_tw;
      strided_u_tw =
        (fun cs src g0 dst s0 tw t0 -> strided_tw cs src g0 1 dst s0 1 tw t0);
      indexed =
        (fun _cs src gidx gb dst sidx sb ->
          body8 src (fun l -> gidx.(gb + l)) dst (fun l -> sidx.(sb + l)));
      indexed_tw =
        (fun _cs src gidx gb dst sidx sb tw t0 ->
          tw_wrap src (fun l -> gidx.(gb + l)) tw t0 dst
            (fun l -> sidx.(sb + l)));
    }

  (* Allocating recursive bodies (stack-local e/o buffers per call). *)
  let dft16_body src idx dst out =
    let e = Array.make 16 0.0 and o = Array.make 16 0.0 in
    dft8_body src (idx 0) (idx 2) (idx 4) (idx 6) (idx 8) (idx 10) (idx 12)
      (idx 14) e 0 1 2 3 4 5 6 7;
    dft8_body src (idx 1) (idx 3) (idx 5) (idx 7) (idx 9) (idx 11) (idx 13)
      (idx 15) o 0 1 2 3 4 5 6 7;
    for k = 0 to 7 do
      let wr = w16r.(k) and wi = w16i.(k) in
      let er = e.(2 * k) and ei = e.((2 * k) + 1) in
      let xr = o.(2 * k) and xi = o.((2 * k) + 1) in
      let tr = (wr *. xr) -. (wi *. xi) and ti = (wr *. xi) +. (wi *. xr) in
      let d0 = out k and d1 = out (k + 8) in
      dst.(2 * d0) <- er +. tr;
      dst.((2 * d0) + 1) <- ei +. ti;
      dst.(2 * d1) <- er -. tr;
      dst.((2 * d1) + 1) <- ei -. ti
    done

  let dft32_body src idx dst out =
    let e = Array.make 32 0.0 and o = Array.make 32 0.0 in
    dft16_body src (fun l -> idx (2 * l)) e (fun l -> l);
    dft16_body src (fun l -> idx ((2 * l) + 1)) o (fun l -> l);
    for k = 0 to 15 do
      let wr = w32r.(k) and wi = w32i.(k) in
      let er = e.(2 * k) and ei = e.((2 * k) + 1) in
      let xr = o.(2 * k) and xi = o.((2 * k) + 1) in
      let tr = (wr *. xr) -. (wi *. xi) and ti = (wr *. xi) +. (wi *. xr) in
      let d0 = out k and d1 = out (k + 16) in
      dst.(2 * d0) <- er +. tr;
      dst.((2 * d0) + 1) <- ei +. ti;
      dst.(2 * d1) <- er -. tr;
      dst.((2 * d1) + 1) <- ei -. ti
    done

  let recursive_codelet base body scratch_len =
    let tw_wrap src idx tw t0 dst out =
      let scratch = Array.make scratch_len 0.0 in
      scale_into src idx tw t0 scratch (scratch_len / 2);
      body scratch (fun l -> l) dst out
    in
    let strided _cs src g0 gl dst s0 sl =
      body src (fun l -> g0 + (l * gl)) dst (fun l -> s0 + (l * sl))
    in
    let strided_tw _cs src g0 gl dst s0 sl tw t0 =
      tw_wrap src (fun l -> g0 + (l * gl)) tw t0 dst (fun l -> s0 + (l * sl))
    in
    {
      base with
      strided;
      strided_u = (fun cs src g0 dst s0 -> strided cs src g0 1 dst s0 1);
      strided_tw;
      strided_u_tw =
        (fun cs src g0 dst s0 tw t0 -> strided_tw cs src g0 1 dst s0 1 tw t0);
      indexed =
        (fun _cs src gidx gb dst sidx sb ->
          body src (fun l -> gidx.(gb + l)) dst (fun l -> sidx.(sb + l)));
      indexed_tw =
        (fun _cs src gidx gb dst sidx sb tw t0 ->
          tw_wrap src (fun l -> gidx.(gb + l)) tw t0 dst
            (fun l -> sidx.(sb + l)));
    }

  let dft16 = recursive_codelet dft16_codelet dft16_body 32
  let dft32 = recursive_codelet dft32_codelet dft32_body 64

  let dft_table : (int, t) Hashtbl.t = Hashtbl.create 16

  let dft r =
    match Hashtbl.find_opt dft_table r with
    | Some c -> c
    | None ->
        let c =
          match r with
          | 1 ->
              make ~radix:1 ~flops:0 ~name:"dft1" (fun inp out ->
                  out.(0) <- inp.(0);
                  out.(1) <- inp.(1))
          | 2 -> dft2_codelet (* allocation-free then as now *)
          | 3 -> dft3
          | 4 -> dft4
          | 8 -> dft8
          | 16 -> dft16
          | 32 -> dft32
          | r ->
              make ~radix:r
                ~flops:((8 * r * r) - (2 * r))
                ~name:(Printf.sprintf "dft%d_generic" r)
                (dft_generic_compute r)
        in
        Hashtbl.add dft_table r c;
        c

  let wht r =
    let k = Int_util.ilog2 r in
    make ~radix:r ~flops:(2 * r * k) ~name:(Printf.sprintf "wht%d" r)
      (wht_compute r)

  let copy r =
    make ~radix:r ~flops:0 ~name:(Printf.sprintf "copy%d" r) (copy_compute r)
end

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let legacy (c : t) =
  if has_prefix "dft" c.name then Legacy.dft c.radix
  else if has_prefix "wht" c.name then Legacy.wht c.radix
  else if has_prefix "copy" c.name then Legacy.copy c.radix
  else c
