(** Executable plans: materialized IR.

    Materialization resolves each pass's symbolic index functions into
    either affine strides (the common case — detected by probing, fully
    verified for small sizes and densely sampled above
    {!affine_check_threshold}) or precomputed index tables, and evaluates
    scale functions into interleaved twiddle tables.  This is the moment
    "program generation" happens: the result is straight-line addressing +
    unrolled codelets, no formula interpretation remains on the hot path.

    Execution is allocation-free in steady state: every worker runs with
    a preallocated {!ctx} (codelet scratch + odometer digits), and the
    strided pass loops are monomorphized over (twiddle × unit-stride) so
    the inner loop is integer arithmetic plus one kernel call. *)

type addressing =
  | Strided of {
      exts : int array;
      suffix : int array;
          (** Suffix products of [exts] (length [Array.length exts + 1],
              [suffix.(j)] = product of extents from level [j]). *)
      gstrs : int array;
      sstrs : int array;
      g0 : int;
      s0 : int;
      gl : int;
      sl : int;
    }
      (** A nested loop nest with extents [exts] (outermost first): the
          iteration with digit vector [a] gathers element [l] at
          [g0 + Σ_j a_j·gstrs_j + l·gl]; likewise scatter with [s…]. *)
  | Indexed of { gidx : int array; sidx : int array }
      (** Index tables of size [count * radix], iteration-major. *)

type layout =
  | Interleaved  (** re,im,re,im — the classic layout; scalar codelets. *)
  | Split
      (** Split re/im planes within one float array of 2n: re at [0,n),
          im at [n,2n).  Passes run planar {!Vcodelet}s, ν-lane-blocked
          where the materialized strides allow; buffers keep the same
          type and length, so [Par_exec] (ranges, barriers, resident
          regions) works unchanged. *)

type split_exec = {
  vk : Vcodelet.t;
  im : int;  (** Plane offset (= n) of every buffer of the plan. *)
}

type pass = {
  count : int;
  radix : int;
  par : int option;
  mu : int option;
      (** Cache-line granularity (complex elements) from the formula's
          [smp(p, µ)]/[CacheTensor] tags; carried from {!Ir.pass}
          (fusion keeps the largest tag).  [Par_exec] aligns Block
          boundaries of µ-tagged parallel passes so no cache line is
          shared between workers (Definition 1). *)
  vec : int option;
      (** ν-way vector tag carried from {!Ir.pass.vec} (advisory — see
          there). *)
  kernel : Codelet.t;
  addr : addressing;
  tw : float array option;
      (** Interleaved load-scale table, indexed by [i*radix + l]. *)
  flops : int;
  split : split_exec option;
      (** [Some _] iff the plan layout is [Split]: the planar kernel this
          pass runs instead of [kernel].  Lane-blocked ([vk.lanes] = ν)
          when the pass is ν-tagged and the innermost materialized loop
          extent is divisible by ν; scalar planar otherwise. *)
}

type ctx
(** Per-worker execution context (codelet scratch + odometer digit
    buffer).  A ctx must not be shared by concurrently running domains. *)

type vreport = {
  vdigest : int;  (** {!digest} of the plan at validation time. *)
  mutable vbase : bool;
      (** Worker-independent obligations (fusion, vec lowering)
          discharged. *)
  mutable vworkers : int list;
      (** Worker counts whose partition/elision/coverage obligations were
          discharged at this digest. *)
}
(** Record of discharged validation obligations, written by
    [Spiral_validate.validate_plan] and shared by {!clone} (cloning
    changes no immutable state, so certificates carry over); a digest
    mismatch marks the report stale. *)

type t = {
  n : int;
  layout : layout;
  passes : pass array;
  tmp_a : float array;  (** Intermediate buffers (ping-pong). *)
  tmp_b : float array;
  ctx : ctx;  (** Context of the sequential executor. *)
  mutable wctx : ctx array;
      (** Per-worker contexts; use {!ensure_worker_ctxs} / {!worker_ctx}. *)
  mutable elision : (int * bool array) list;
      (** Barrier-elision mask cache, keyed by worker count; owned by
          [Par_exec.elision_mask]. *)
  mutable misaligned : (int * int) list;
      (** False-sharing-check cache, keyed by worker count: number of
          µ-lines written by two or more workers under the aligned Block
          partition.  Owned by [Par_exec.misaligned_lines]. *)
  fusion_cert : Optimize.fusion_cert option;
      (** Certificate of the fusion rewrites applied to the plan's IR
          ([Some] iff fusion ran); discharged by
          [Spiral_validate.check_fusion]. *)
  mutable validation : vreport option;
      (** Discharged-obligation record, keyed by {!digest}; owned by
          [Spiral_validate.validate_plan].  Shared by {!clone}. *)
}

val affine_check_threshold : int
(** Below this many (iteration, element) points, affinity of index
    functions is verified exhaustively; above, densely sampled. *)

val digest : t -> int
(** Structural digest of everything validation depends on (pass shapes,
    tags, kernels, materialized addressing, sampled index/twiddle
    tables).  Any mutation of the pass array changes it, so a stale
    {!vreport} can be detected and never trusted. *)

val of_ir : ?fuse:bool -> ?baseline:bool -> ?layout:layout -> Ir.t -> t
(** [fuse] (default [true]) runs {!Optimize.fuse_data} before
    materializing.  [baseline] (default [false]) swaps every kernel for
    its {!Codelet.legacy} implementation — the pre-optimization hot path,
    for benchmark ablations only.  [layout] (default [Interleaved])
    selects the buffer layout; [Split] attaches planar kernels to every
    pass (ν-lane-blocked where the [vec] tags and materialized strides
    permit — counted under [vec.pass_blocked]/[vec.pass_scalar]). *)

val of_formula :
  ?fuse:bool -> ?baseline:bool -> ?layout:layout -> ?explicit_data:bool ->
  Spiral_spl.Formula.t -> t
(** As {!of_ir} ∘ {!Ir.of_formula}.  [fuse] defaults to [true] except
    when [explicit_data] is set (an explicit plan exists to show the
    unmerged execution; pass [~fuse:true] explicitly to measure fusion
    against it). *)

val context : t -> ctx
(** The plan's own (sequential-execution) context. *)

val make_ctx : t -> ctx
(** A fresh context for this plan — one per concurrent worker. *)

val ensure_worker_ctxs : t -> int -> unit
(** [ensure_worker_ctxs t p] grows [t.wctx] to at least [p] contexts.
    Call before handing the plan to [p] workers; not itself thread-safe. *)

val worker_ctx : t -> int -> ctx
(** [worker_ctx t w] is the context of worker [w], growing the cache if
    needed (call {!ensure_worker_ctxs} first when used concurrently). *)

val run_pass_range :
  ctx -> pass -> src:float array -> dst:float array -> lo:int -> hi:int ->
  unit
(** Execute iterations [lo, hi) of a pass.  The building block for both
    sequential and multi-threaded execution; allocation-free for strided
    passes. *)

val pass_src : t -> x:float array -> int -> float array
(** Source buffer of pass [k] under the ping-pong schedule (pass 0 reads
    [x], intermediates alternate [tmp_a]/[tmp_b]). *)

val pass_dst : t -> y:float array -> int -> float array
(** Destination buffer of pass [k] (the last pass writes [y]). *)

val src_dst_of_pass :
  t -> x:float array -> y:float array -> int -> float array * float array
(** [pass_src] and [pass_dst] as a pair (allocates; analysis use). *)

val iter_addresses : pass -> int -> (int -> int) * (int -> int)
(** [iter_addresses p i] is the (gather, scatter) element-index functions
    of iteration [i] — the simulator's and the elision analysis's view of
    a pass's memory footprint.  Allocates closures; not an executor path. *)

val clone : t -> t
(** A plan sharing all immutable state (kernels, index tables, twiddles)
    but with fresh intermediate buffers and contexts — for concurrent
    execution of the same transform from several threads.  Cached
    analysis results (elision masks, false-sharing counts, the
    {!vreport} of validation runs that completed before the clone) are
    shared too: they depend only on the shared state, so re-deriving
    them on a clone would be pure waste. *)

val execute : t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t -> unit
(** [execute plan x y] computes [y = A x] sequentially.  [x] and [y] must
    be distinct vectors of length [n] — in the plan's own layout: a
    [Split] plan reads and writes planar buffers (re plane then im
    plane; see {!layout}).  Not re-entrant: a plan owns its intermediate
    buffers and context ({!clone} for concurrent use). *)

val total_flops : t -> int

val describe : t -> string
(** One line per pass: radix, count, addressing kind, parallelism. *)
