(** Executable plans: materialized IR.

    Materialization resolves each pass's symbolic index functions into
    either affine strides (the common case — detected by probing, fully
    verified for small sizes and densely sampled above
    {!affine_check_threshold}) or precomputed index tables, and evaluates
    scale functions into interleaved twiddle tables.  This is the moment
    "program generation" happens: the result is straight-line addressing +
    unrolled codelets, no formula interpretation remains on the hot path. *)

type addressing =
  | Strided of {
      exts : int array;
      gstrs : int array;
      sstrs : int array;
      g0 : int;
      s0 : int;
      gl : int;
      sl : int;
    }
      (** A nested loop nest with extents [exts] (outermost first): the
          iteration with digit vector [a] gathers element [l] at
          [g0 + Σ_j a_j·gstrs_j + l·gl]; likewise scatter with [s…]. *)
  | Indexed of { gidx : int array; sidx : int array }
      (** Index tables of size [count * radix], iteration-major. *)

type pass = {
  count : int;
  radix : int;
  par : int option;
  kernel : Codelet.t;
  addr : addressing;
  tw : float array option;
      (** Interleaved load-scale table, indexed by [i*radix + l]. *)
  flops : int;
}

type t = {
  n : int;
  passes : pass array;
  tmp_a : float array;  (** Intermediate buffers (ping-pong). *)
  tmp_b : float array;
}

val affine_check_threshold : int
(** Below this many (iteration, element) points, affinity of index
    functions is verified exhaustively; above, densely sampled. *)

val of_ir : Ir.t -> t

val of_formula : ?explicit_data:bool -> Spiral_spl.Formula.t -> t

val run_pass_range :
  pass -> src:float array -> dst:float array -> lo:int -> hi:int -> unit
(** Execute iterations [lo, hi) of a pass.  The building block for both
    sequential and multi-threaded execution. *)

val src_dst_of_pass :
  t -> x:float array -> y:float array -> int -> float array * float array
(** [src_dst_of_pass plan ~x ~y k] is the (source, destination) buffer pair
    of pass [k] under the plan's ping-pong schedule: pass 0 reads [x], the
    last pass writes [y], intermediates alternate [tmp_a]/[tmp_b]. *)

val clone : t -> t
(** A plan sharing all immutable state (kernels, index tables, twiddles)
    but with fresh intermediate buffers — for concurrent execution of the
    same transform from several threads. *)

val execute : t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t -> unit
(** [execute plan x y] computes [y = A x] sequentially.  [x] and [y] must
    be distinct vectors of length [n].  Not re-entrant: a plan owns its
    intermediate buffers ({!clone} for concurrent use). *)

val total_flops : t -> int

val describe : t -> string
(** One line per pass: radix, count, addressing kind, parallelism. *)
