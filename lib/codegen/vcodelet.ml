open Spiral_util

(* Planar (split re/im) codelets: the OCaml lowering target of
   [Vector_rules.vectorize]d formulas.  Buffers hold a transform of n
   complex elements as one float array of 2n with the real plane at
   [0, n) and the imaginary plane at [n, 2n); every entry point takes the
   plane offset [im] (= n) instead of interleaving by 2.  Splitting the
   planes removes the ×2 index scaling and the re/im interleave from the
   inner loops, so a ν-lane block compiles to straight-line unboxed float
   code over two independent streams — the scalar-ISA analogue of the
   paper's short-vector kernels.

   Blocked entry points ([blk]/[blk_tw]) process [lanes] consecutive
   iterations of a pass per call — the materialized ν-way vector block —
   amortizing the odometer and twiddle-base arithmetic over the block.
   The inner radices 2 and 4 are fully unrolled at 2 and 4 lanes; radix
   3/8 blocks run an unrolled straight-line body per lane; everything
   else falls back to a planar dense-matrix kernel.

   Scratch is shared with the interleaved path: a planar stage of radix r
   needs 2r floats, and [Codelet.scratch] buffers hold 2·max_radix. *)

type t = {
  radix : int;
  lanes : int;  (** Iterations per [blk] call; 1 = scalar planar. *)
  name : string;
  s1 : Codelet.scratch -> int -> float array -> int -> int -> float array -> int -> int -> unit;
      (** [s1 cs im src gb gl dst sb sl]: one iteration; element [l] reads
          re [src.(gb + l*gl)], im [src.(im + gb + l*gl)]. *)
  s1_tw :
    Codelet.scratch -> int -> float array -> int -> int -> float array ->
    int -> int -> float array -> int -> unit;
      (** As [s1] plus an interleaved twiddle table: element [l] is scaled
          by [tw.(2*(t0+l))] + i·[tw.(2*(t0+l)+1)] on load. *)
  blk :
    Codelet.scratch -> int -> float array -> int -> int -> int ->
    float array -> int -> int -> int -> unit;
      (** [blk cs im src gb gl gv dst sb sl sv]: [lanes] iterations; lane
          [v] element [l] reads [gb + l*gl + v*gv], writes
          [sb + l*sl + v*sv]. *)
  blk_tw :
    Codelet.scratch -> int -> float array -> int -> int -> int ->
    float array -> int -> int -> int -> float array -> int -> unit;
      (** As [blk]; lane [v] element [l] uses twiddle [t0 + v*radix + l]. *)
  ix1 :
    Codelet.scratch -> int -> float array -> int array -> int ->
    float array -> int array -> int -> unit;
      (** Indexed addressing: element [l] reads [gidx.(gb + l)], writes
          [sidx.(sb + l)]. *)
  ix1_tw :
    Codelet.scratch -> int -> float array -> int array -> int ->
    float array -> int array -> int -> float array -> int -> unit;
}

(* ------------------------------------------------------------------ *)
(* Straight-line planar bodies.  Indices are resolved complex-element
   positions; [im] is the plane offset of both buffers (plans ping-pong
   between equal-sized buffers, so one offset serves src and dst). *)

let p1 src im i0 dst o0 =
  dst.(o0) <- src.(i0);
  dst.(im + o0) <- src.(im + i0)

let p1_tw src im i0 tw t0 dst o0 =
  let wr = tw.(2 * t0) and wi = tw.((2 * t0) + 1) in
  let xr = src.(i0) and xi = src.(im + i0) in
  dst.(o0) <- (wr *. xr) -. (wi *. xi);
  dst.(im + o0) <- (wr *. xi) +. (wi *. xr)

let p2 src im i0 i1 dst o0 o1 =
  let x0r = src.(i0) and x0i = src.(im + i0) in
  let x1r = src.(i1) and x1i = src.(im + i1) in
  dst.(o0) <- x0r +. x1r;
  dst.(im + o0) <- x0i +. x1i;
  dst.(o1) <- x0r -. x1r;
  dst.(im + o1) <- x0i -. x1i

let p2_tw src im i0 i1 tw t0 dst o0 o1 =
  let w0r = tw.(2 * t0) and w0i = tw.((2 * t0) + 1) in
  let w1r = tw.(2 * (t0 + 1)) and w1i = tw.((2 * (t0 + 1)) + 1) in
  let a0r = src.(i0) and a0i = src.(im + i0) in
  let a1r = src.(i1) and a1i = src.(im + i1) in
  let x0r = (w0r *. a0r) -. (w0i *. a0i)
  and x0i = (w0r *. a0i) +. (w0i *. a0r) in
  let x1r = (w1r *. a1r) -. (w1i *. a1i)
  and x1i = (w1r *. a1i) +. (w1i *. a1r) in
  dst.(o0) <- x0r +. x1r;
  dst.(im + o0) <- x0i +. x1i;
  dst.(o1) <- x0r -. x1r;
  dst.(im + o1) <- x0i -. x1i

let sqrt3_2 = sqrt 3.0 /. 2.0

let p3 src im i0 i1 i2 dst o0 o1 o2 =
  let x0r = src.(i0) and x0i = src.(im + i0) in
  let x1r = src.(i1) and x1i = src.(im + i1) in
  let x2r = src.(i2) and x2i = src.(im + i2) in
  let tr = x1r +. x2r and ti = x1i +. x2i in
  let ur = x1r -. x2r and ui = x1i -. x2i in
  let ar = x0r -. (0.5 *. tr) and ai = x0i -. (0.5 *. ti) in
  let br = sqrt3_2 *. ur and bi = sqrt3_2 *. ui in
  dst.(o0) <- x0r +. tr;
  dst.(im + o0) <- x0i +. ti;
  dst.(o1) <- ar +. bi;
  dst.(im + o1) <- ai -. br;
  dst.(o2) <- ar -. bi;
  dst.(im + o2) <- ai +. br

let p4 src im i0 i1 i2 i3 dst o0 o1 o2 o3 =
  let x0r = src.(i0) and x0i = src.(im + i0) in
  let x1r = src.(i1) and x1i = src.(im + i1) in
  let x2r = src.(i2) and x2i = src.(im + i2) in
  let x3r = src.(i3) and x3i = src.(im + i3) in
  let t0r = x0r +. x2r and t0i = x0i +. x2i in
  let t1r = x0r -. x2r and t1i = x0i -. x2i in
  let t2r = x1r +. x3r and t2i = x1i +. x3i in
  let t3r = x1r -. x3r and t3i = x1i -. x3i in
  dst.(o0) <- t0r +. t2r;
  dst.(im + o0) <- t0i +. t2i;
  dst.(o2) <- t0r -. t2r;
  dst.(im + o2) <- t0i -. t2i;
  dst.(o1) <- t1r +. t3i;
  dst.(im + o1) <- t1i -. t3r;
  dst.(o3) <- t1r -. t3i;
  dst.(im + o3) <- t1i +. t3r

let p4_tw src im i0 i1 i2 i3 tw t0 dst o0 o1 o2 o3 =
  let w0r = tw.(2 * t0) and w0i = tw.((2 * t0) + 1) in
  let w1r = tw.(2 * (t0 + 1)) and w1i = tw.((2 * (t0 + 1)) + 1) in
  let w2r = tw.(2 * (t0 + 2)) and w2i = tw.((2 * (t0 + 2)) + 1) in
  let w3r = tw.(2 * (t0 + 3)) and w3i = tw.((2 * (t0 + 3)) + 1) in
  let a0r = src.(i0) and a0i = src.(im + i0) in
  let a1r = src.(i1) and a1i = src.(im + i1) in
  let a2r = src.(i2) and a2i = src.(im + i2) in
  let a3r = src.(i3) and a3i = src.(im + i3) in
  let x0r = (w0r *. a0r) -. (w0i *. a0i)
  and x0i = (w0r *. a0i) +. (w0i *. a0r) in
  let x1r = (w1r *. a1r) -. (w1i *. a1i)
  and x1i = (w1r *. a1i) +. (w1i *. a1r) in
  let x2r = (w2r *. a2r) -. (w2i *. a2i)
  and x2i = (w2r *. a2i) +. (w2i *. a2r) in
  let x3r = (w3r *. a3r) -. (w3i *. a3i)
  and x3i = (w3r *. a3i) +. (w3i *. a3r) in
  let t0r = x0r +. x2r and t0i = x0i +. x2i in
  let t1r = x0r -. x2r and t1i = x0i -. x2i in
  let t2r = x1r +. x3r and t2i = x1i +. x3i in
  let t3r = x1r -. x3r and t3i = x1i -. x3i in
  dst.(o0) <- t0r +. t2r;
  dst.(im + o0) <- t0i +. t2i;
  dst.(o2) <- t0r -. t2r;
  dst.(im + o2) <- t0i -. t2i;
  dst.(o1) <- t1r +. t3i;
  dst.(im + o1) <- t1i -. t3r;
  dst.(o3) <- t1r -. t3i;
  dst.(im + o3) <- t1i +. t3r

let sqrt1_2 = sqrt 0.5

let p8 src ims imd i0 i1 i2 i3 i4 i5 i6 i7 dst o0 o1 o2 o3 o4 o5 o6 o7 =
  let x0r = src.(i0) and x0i = src.(ims + i0) in
  let x2r = src.(i2) and x2i = src.(ims + i2) in
  let x4r = src.(i4) and x4i = src.(ims + i4) in
  let x6r = src.(i6) and x6i = src.(ims + i6) in
  let t0r = x0r +. x4r and t0i = x0i +. x4i in
  let t1r = x0r -. x4r and t1i = x0i -. x4i in
  let t2r = x2r +. x6r and t2i = x2i +. x6i in
  let t3r = x2r -. x6r and t3i = x2i -. x6i in
  let e0r = t0r +. t2r and e0i = t0i +. t2i in
  let e2r = t0r -. t2r and e2i = t0i -. t2i in
  let e1r = t1r +. t3i and e1i = t1i -. t3r in
  let e3r = t1r -. t3i and e3i = t1i +. t3r in
  let x1r = src.(i1) and x1i = src.(ims + i1) in
  let x3r = src.(i3) and x3i = src.(ims + i3) in
  let x5r = src.(i5) and x5i = src.(ims + i5) in
  let x7r = src.(i7) and x7i = src.(ims + i7) in
  let u0r = x1r +. x5r and u0i = x1i +. x5i in
  let u1r = x1r -. x5r and u1i = x1i -. x5i in
  let u2r = x3r +. x7r and u2i = x3i +. x7i in
  let u3r = x3r -. x7r and u3i = x3i -. x7i in
  let f0r = u0r +. u2r and f0i = u0i +. u2i in
  let f2r = u0r -. u2r and f2i = u0i -. u2i in
  let f1r = u1r +. u3i and f1i = u1i -. u3r in
  let f3r = u1r -. u3i and f3i = u1i +. u3r in
  dst.(o0) <- e0r +. f0r;
  dst.(imd + o0) <- e0i +. f0i;
  dst.(o4) <- e0r -. f0r;
  dst.(imd + o4) <- e0i -. f0i;
  let w1r = sqrt1_2 *. (f1r +. f1i) and w1i = sqrt1_2 *. (f1i -. f1r) in
  dst.(o1) <- e1r +. w1r;
  dst.(imd + o1) <- e1i +. w1i;
  dst.(o5) <- e1r -. w1r;
  dst.(imd + o5) <- e1i -. w1i;
  dst.(o2) <- e2r +. f2i;
  dst.(imd + o2) <- e2i -. f2r;
  dst.(o6) <- e2r -. f2i;
  dst.(imd + o6) <- e2i +. f2r;
  let w3r = sqrt1_2 *. (f3i -. f3r) and w3i = -.sqrt1_2 *. (f3r +. f3i) in
  dst.(o3) <- e3r +. w3r;
  dst.(imd + o3) <- e3i +. w3i;
  dst.(o7) <- e3r -. w3r;
  dst.(imd + o7) <- e3i -. w3i

(* Twiddle-scale [r] planar elements into the (planar, plane offset [r])
   stage — the load phase of generic and radix-8 twiddled entries. *)
let scale_planar stage src im g0 gl tw t0 r =
  for l = 0 to r - 1 do
    let s = g0 + (l * gl) in
    let wr = tw.(2 * (t0 + l)) and wi = tw.((2 * (t0 + l)) + 1) in
    let xr = src.(s) and xi = src.(im + s) in
    stage.(l) <- (wr *. xr) -. (wi *. xi);
    stage.(r + l) <- (wr *. xi) +. (wi *. xr)
  done

(* ------------------------------------------------------------------ *)
(* Generic construction from a planar contiguous kernel
   [compute stage out] (both planar with plane offset [radix]). *)

let make_generic ~radix ~lanes ~name compute =
  let r = radix in
  let s1 cs im src gb gl dst sb sl =
    let stage = cs.Codelet.stage and out = cs.Codelet.out in
    for l = 0 to r - 1 do
      let s = gb + (l * gl) in
      stage.(l) <- src.(s);
      stage.(r + l) <- src.(im + s)
    done;
    compute stage out;
    for l = 0 to r - 1 do
      let d = sb + (l * sl) in
      dst.(d) <- out.(l);
      dst.(im + d) <- out.(r + l)
    done
  in
  let s1_tw cs im src gb gl dst sb sl tw t0 =
    let stage = cs.Codelet.stage and out = cs.Codelet.out in
    scale_planar stage src im gb gl tw t0 r;
    compute stage out;
    for l = 0 to r - 1 do
      let d = sb + (l * sl) in
      dst.(d) <- out.(l);
      dst.(im + d) <- out.(r + l)
    done
  in
  {
    radix;
    lanes;
    name;
    s1;
    s1_tw;
    blk =
      (fun cs im src gb gl gv dst sb sl sv ->
        for v = 0 to lanes - 1 do
          s1 cs im src (gb + (v * gv)) gl dst (sb + (v * sv)) sl
        done);
    blk_tw =
      (fun cs im src gb gl gv dst sb sl sv tw t0 ->
        for v = 0 to lanes - 1 do
          s1_tw cs im src (gb + (v * gv)) gl dst
            (sb + (v * sv))
            sl tw
            (t0 + (v * r))
        done);
    ix1 =
      (fun cs im src gidx gb dst sidx sb ->
        let stage = cs.Codelet.stage and out = cs.Codelet.out in
        for l = 0 to r - 1 do
          let s = gidx.(gb + l) in
          stage.(l) <- src.(s);
          stage.(r + l) <- src.(im + s)
        done;
        compute stage out;
        for l = 0 to r - 1 do
          let d = sidx.(sb + l) in
          dst.(d) <- out.(l);
          dst.(im + d) <- out.(r + l)
        done);
    ix1_tw =
      (fun cs im src gidx gb dst sidx sb tw t0 ->
        let stage = cs.Codelet.stage and out = cs.Codelet.out in
        for l = 0 to r - 1 do
          let s = gidx.(gb + l) in
          let wr = tw.(2 * (t0 + l)) and wi = tw.((2 * (t0 + l)) + 1) in
          let xr = src.(s) and xi = src.(im + s) in
          stage.(l) <- (wr *. xr) -. (wi *. xi);
          stage.(r + l) <- (wr *. xi) +. (wi *. xr)
        done;
        compute stage out;
        for l = 0 to r - 1 do
          let d = sidx.(sb + l) in
          dst.(d) <- out.(l);
          dst.(im + d) <- out.(r + l)
        done);
  }

(* Planar dense-matrix kernel for radices without a straight-line body
   (dft16/32, generic leaves, WHT). *)
let matrix_compute name radix =
  let mat =
    if String.length name >= 3 && String.sub name 0 3 = "wht" then
      let rec wht n =
        if n = 1 then [| [| Complex.one |] |]
        else
          Cmatrix.kronecker
            [| [| Complex.one; Complex.one |];
               [| Complex.one; { Complex.re = -1.0; im = 0.0 } |] |]
            (wht (n / 2))
      in
      wht radix
    else Cmatrix.init radix radix (fun k l -> Twiddle.omega_pow ~n:radix ~k ~l)
  in
  let r = radix in
  let wre = Array.make (r * r) 0.0 and wim = Array.make (r * r) 0.0 in
  for k = 0 to r - 1 do
    for l = 0 to r - 1 do
      wre.((k * r) + l) <- mat.(k).(l).Complex.re;
      wim.((k * r) + l) <- mat.(k).(l).Complex.im
    done
  done;
  fun stage out ->
    for k = 0 to r - 1 do
      let ar = ref 0.0 and ai = ref 0.0 in
      for l = 0 to r - 1 do
        let wr = wre.((k * r) + l) and wi = wim.((k * r) + l) in
        let xr = stage.(l) and xi = stage.(r + l) in
        ar := !ar +. ((wr *. xr) -. (wi *. xi));
        ai := !ai +. ((wr *. xi) +. (wi *. xr))
      done;
      out.(k) <- !ar;
      out.(r + k) <- !ai
    done

(* ------------------------------------------------------------------ *)
(* Specialized planar entries: direct src→dst with no stage round-trip,
   lane blocks unrolled for the inner radices. *)

let specialize base =
  let r = base.radix and nu = base.lanes in
  match r with
  | 1 ->
      {
        base with
        s1 = (fun _cs im src gb _gl dst sb _sl -> p1 src im gb dst sb);
        s1_tw =
          (fun _cs im src gb _gl dst sb _sl tw t0 ->
            p1_tw src im gb tw t0 dst sb);
        blk =
          (fun _cs im src gb _gl gv dst sb _sl sv ->
            for v = 0 to nu - 1 do
              p1 src im (gb + (v * gv)) dst (sb + (v * sv))
            done);
        blk_tw =
          (fun _cs im src gb _gl gv dst sb _sl sv tw t0 ->
            for v = 0 to nu - 1 do
              p1_tw src im (gb + (v * gv)) tw (t0 + v) dst (sb + (v * sv))
            done);
      }
  | 2 ->
      let s1 _cs im src gb gl dst sb sl = p2 src im gb (gb + gl) dst sb (sb + sl) in
      let s1_tw _cs im src gb gl dst sb sl tw t0 =
        p2_tw src im gb (gb + gl) tw t0 dst sb (sb + sl)
      in
      let blk =
        if nu = 2 then fun _cs im src gb gl gv dst sb sl sv ->
          p2 src im gb (gb + gl) dst sb (sb + sl);
          p2 src im (gb + gv) (gb + gl + gv) dst (sb + sv) (sb + sl + sv)
        else if nu = 4 then fun _cs im src gb gl gv dst sb sl sv ->
          p2 src im gb (gb + gl) dst sb (sb + sl);
          p2 src im (gb + gv) (gb + gl + gv) dst (sb + sv) (sb + sl + sv);
          let g2 = gb + (2 * gv) and s2 = sb + (2 * sv) in
          p2 src im g2 (g2 + gl) dst s2 (s2 + sl);
          p2 src im (g2 + gv) (g2 + gl + gv) dst (s2 + sv) (s2 + sl + sv)
        else fun _cs im src gb gl gv dst sb sl sv ->
          for v = 0 to nu - 1 do
            p2 src im (gb + (v * gv)) (gb + gl + (v * gv)) dst
              (sb + (v * sv))
              (sb + sl + (v * sv))
          done
      in
      let blk_tw =
        if nu = 2 then fun _cs im src gb gl gv dst sb sl sv tw t0 ->
          p2_tw src im gb (gb + gl) tw t0 dst sb (sb + sl);
          p2_tw src im (gb + gv) (gb + gl + gv) tw (t0 + 2) dst (sb + sv)
            (sb + sl + sv)
        else if nu = 4 then fun _cs im src gb gl gv dst sb sl sv tw t0 ->
          p2_tw src im gb (gb + gl) tw t0 dst sb (sb + sl);
          p2_tw src im (gb + gv) (gb + gl + gv) tw (t0 + 2) dst (sb + sv)
            (sb + sl + sv);
          let g2 = gb + (2 * gv) and s2 = sb + (2 * sv) in
          p2_tw src im g2 (g2 + gl) tw (t0 + 4) dst s2 (s2 + sl);
          p2_tw src im (g2 + gv) (g2 + gl + gv) tw (t0 + 6) dst (s2 + sv)
            (s2 + sl + sv)
        else fun _cs im src gb gl gv dst sb sl sv tw t0 ->
          for v = 0 to nu - 1 do
            p2_tw src im (gb + (v * gv)) (gb + gl + (v * gv)) tw (t0 + (v * 2))
              dst
              (sb + (v * sv))
              (sb + sl + (v * sv))
          done
      in
      { base with s1; s1_tw; blk; blk_tw }
  | 3 ->
      let s1 _cs im src gb gl dst sb sl =
        p3 src im gb (gb + gl) (gb + (2 * gl)) dst sb (sb + sl) (sb + (2 * sl))
      in
      {
        base with
        s1;
        blk =
          (fun _cs im src gb gl gv dst sb sl sv ->
            for v = 0 to nu - 1 do
              let g = gb + (v * gv) and s = sb + (v * sv) in
              p3 src im g (g + gl) (g + (2 * gl)) dst s (s + sl) (s + (2 * sl))
            done);
      }
  | 4 ->
      let s1 _cs im src gb gl dst sb sl =
        p4 src im gb (gb + gl) (gb + (2 * gl)) (gb + (3 * gl)) dst sb (sb + sl)
          (sb + (2 * sl))
          (sb + (3 * sl))
      in
      let s1_tw _cs im src gb gl dst sb sl tw t0 =
        p4_tw src im gb (gb + gl) (gb + (2 * gl)) (gb + (3 * gl)) tw t0 dst sb
          (sb + sl)
          (sb + (2 * sl))
          (sb + (3 * sl))
      in
      let blk _cs im src gb gl gv dst sb sl sv =
        if nu = 2 then begin
          p4 src im gb (gb + gl) (gb + (2 * gl)) (gb + (3 * gl)) dst sb
            (sb + sl)
            (sb + (2 * sl))
            (sb + (3 * sl));
          let g = gb + gv and s = sb + sv in
          p4 src im g (g + gl) (g + (2 * gl)) (g + (3 * gl)) dst s (s + sl)
            (s + (2 * sl))
            (s + (3 * sl))
        end
        else
          for v = 0 to nu - 1 do
            let g = gb + (v * gv) and s = sb + (v * sv) in
            p4 src im g (g + gl) (g + (2 * gl)) (g + (3 * gl)) dst s (s + sl)
              (s + (2 * sl))
              (s + (3 * sl))
          done
      in
      let blk_tw _cs im src gb gl gv dst sb sl sv tw t0 =
        if nu = 2 then begin
          p4_tw src im gb (gb + gl) (gb + (2 * gl)) (gb + (3 * gl)) tw t0 dst
            sb (sb + sl)
            (sb + (2 * sl))
            (sb + (3 * sl));
          let g = gb + gv and s = sb + sv in
          p4_tw src im g (g + gl) (g + (2 * gl)) (g + (3 * gl)) tw (t0 + 4) dst
            s (s + sl)
            (s + (2 * sl))
            (s + (3 * sl))
        end
        else
          for v = 0 to nu - 1 do
            let g = gb + (v * gv) and s = sb + (v * sv) in
            p4_tw src im g (g + gl) (g + (2 * gl)) (g + (3 * gl)) tw
              (t0 + (v * 4))
              dst s (s + sl)
              (s + (2 * sl))
              (s + (3 * sl))
          done
      in
      { base with s1; s1_tw; blk; blk_tw }
  | 8 ->
      let s1 _cs im src gb gl dst sb sl =
        p8 src im im gb (gb + gl) (gb + (2 * gl)) (gb + (3 * gl)) (gb + (4 * gl))
          (gb + (5 * gl))
          (gb + (6 * gl))
          (gb + (7 * gl))
          dst sb (sb + sl)
          (sb + (2 * sl))
          (sb + (3 * sl))
          (sb + (4 * sl))
          (sb + (5 * sl))
          (sb + (6 * sl))
          (sb + (7 * sl))
      in
      let s1_tw cs im src gb gl dst sb sl tw t0 =
        let stage = cs.Codelet.stage in
        scale_planar stage src im gb gl tw t0 8;
        p8 stage 8 im 0 1 2 3 4 5 6 7 dst sb (sb + sl)
          (sb + (2 * sl))
          (sb + (3 * sl))
          (sb + (4 * sl))
          (sb + (5 * sl))
          (sb + (6 * sl))
          (sb + (7 * sl))
      in
      {
        base with
        s1;
        s1_tw;
        blk =
          (fun cs im src gb gl gv dst sb sl sv ->
            for v = 0 to nu - 1 do
              s1 cs im src (gb + (v * gv)) gl dst (sb + (v * sv)) sl
            done);
        blk_tw =
          (fun cs im src gb gl gv dst sb sl sv tw t0 ->
            for v = 0 to nu - 1 do
              s1_tw cs im src (gb + (v * gv)) gl dst
                (sb + (v * sv))
                sl tw
                (t0 + (v * 8))
            done);
      }
  | _ -> base

let is_copy name =
  String.length name >= 4 && String.sub name 0 4 = "copy"

let build ~lanes (kernel : Codelet.t) =
  let r = kernel.Codelet.radix and name = kernel.Codelet.name in
  let compute =
    if r = 1 || is_copy name then fun stage out ->
      out.(0) <- stage.(0);
      out.(1) <- stage.(1)
    else matrix_compute name r
  in
  specialize (make_generic ~radix:r ~lanes ~name compute)

(* Instances are immutable and stateless, so one per (kernel, lanes)
   serves every plan; cloned plans share them like interleaved kernels. *)
let cache : (string * int, t) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()

let get ~lanes (kernel : Codelet.t) =
  let key = (kernel.Codelet.name, lanes) in
  Mutex.lock cache_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_lock)
    (fun () ->
      match Hashtbl.find_opt cache key with
      | Some vk -> vk
      | None ->
          let vk = build ~lanes kernel in
          Hashtbl.add cache key vk;
          vk)
