(** Compilation of SPL formulas into merged loop nests (the analogue of
    Spiral's Σ-SPL loop merging [11]).

    A formula compiles to a sequence of {e passes} executed left to right;
    pass [k] reads the output buffer of pass [k-1] (pass 0 reads the plan
    input, the last pass writes the plan output).  Each pass is a single
    loop of [count] iterations applying a codelet of size [radix], with
    symbolic gather/scatter index functions and an optional load-scale
    (twiddle) function.  Permutation- and diagonal-shaped factors never
    become passes of their own (unless [explicit_data] is set): they are
    folded into the index functions and twiddle tables of the adjacent
    computation passes, exactly as in the paper.

    Parallel constructs mark the passes they contain with their processor
    count [par]; iterations of such a pass are split into [par] contiguous
    chunks, one per processor (the schedule of rules (7)/(9)).

    Limitation: [DirectSum]/[ParDirectSum] must be diagonal-shaped (the
    only form the paper's rule set produces, via rule (11)); general direct
    sums raise [Unsupported]. *)

exception Unsupported of string

type pass = {
  count : int;  (** Loop iterations. *)
  radix : int;  (** Codelet size. *)
  par : int option;
      (** [Some p]: iterations are split into [p] contiguous chunks. *)
  mu : int option;
      (** Cache-line granularity (complex elements) this pass was tagged
          with by the enclosing [smp(p, µ)] / [CacheTensor] construct.
          The parallel executor aligns Block-partition boundaries to
          multiples of [µ] so no cache line is shared between processors
          (Definition 1's false-sharing freedom). *)
  vec : int option;
      (** ν-way vector block width from the enclosing [A ⊗→ I_ν]
          ([VTensor]) / in-register shuffle ([VShuffle]) construct of a
          {!Spiral_rewrite.Vector_rules.vectorize}d formula.  Advisory:
          backends that vectorize must re-verify lane legality on the
          materialized strides (loop merging can rotate the lane
          dimension to any loop level, or split it between the gather and
          scatter sides). *)
  kernel : Codelet.t;
  gather : int -> int -> int;
      (** [gather i l]: complex index read for element [l] of iteration
          [i] from the pass input buffer. *)
  scatter : int -> int -> int;
  scale : (int -> int -> Complex.t) option;
      (** Applied to element [l] of iteration [i] on load. *)
  hint : int list;
      (** Loop extents of the iteration space, outermost first; their
          product is [count].  Materialization uses this to recover
          per-level affine strides (nested loop nests) from the flattened
          index functions. *)
}

type t = {
  n : int;  (** Transform size (complex elements). *)
  passes : pass list;  (** In execution order. *)
}

val of_formula : ?explicit_data:bool -> Spiral_spl.Formula.t -> t
(** Compile a formula.  [explicit_data] (default [false]) disables loop
    merging: every permutation and diagonal factor becomes an explicit
    copy/scale pass — how the traditional six-step algorithm executes its
    transpositions, and the ablation baseline for merging. *)

val pass_flops : pass -> int
(** Real flops executed by one full pass (codelet work + twiddle scaling). *)

val total_flops : t -> int

val validate : t -> unit
(** Structural checks: index functions in range, no write overlap within a
    pass.  O(n · radix); for tests. *)

val transpose_pass :
  rows:int -> cols:int -> tile:int -> ?par:int -> ?mu:int -> unit -> pass
(** A pure data-movement pass relocating a row-major [rows]x[cols] matrix
    into its transposed (column-major) image in [tile]x[tile] cache
    blocks: iteration [(cb, rb, ri)] copies [tile] consecutive elements
    of row [rb*tile + ri], columns [cb*tile ..], to the transposed
    position (gather stride 1, scatter stride [rows] — affine, so plans
    materialize it as strided addressing).  [tile] must divide both
    extents.  The kernel is {!Codelet.copy}[ tile]; [par]/[mu] tag the
    pass for worker partitioning and µ-alignment like any other. *)
