open Spiral_spl

exception Unsupported of string

type pass = {
  count : int;
  radix : int;
  par : int option;
  mu : int option;
  vec : int option;
  kernel : Codelet.t;
  gather : int -> int -> int;
  scatter : int -> int -> int;
  scale : (int -> int -> Complex.t) option;
  hint : int list;
}

type t = { n : int; passes : pass list }

(* Embedding context: where a subformula of dimension [dim] sits inside the
   full problem.  [in_of it k] maps (embedding iteration, local index) to a
   physical complex index of the buffer the subformula reads; [out_of]
   likewise for writes.  [scale] is a pending diagonal merged into the
   first load. *)
type embed = {
  count : int;
  dim : int;
  in_of : int -> int -> int;
  out_of : int -> int -> int;
  scale : (int -> int -> Complex.t) option;
  par : int option;
  mu : int option;  (* cache-line granularity from smp(p,µ) / CacheTensor *)
  vec : int option;  (* ν-way vector block width from VTensor/VShuffle *)
  hint : int list;  (* loop extents, outermost first; product = count *)
}

let compose_scale outer inner =
  match (outer, inner) with
  | None, s | s, None -> s
  | Some f, Some g -> Some (fun it k -> Complex.mul (f it k) (g it k))

(* Merge a run of data factors (in execution order) into a local
   permutation [loc] and a local diagonal [scale]. *)
let merge_decors decors =
  (* Invariant: after processing a prefix (in execution order), reading
     logical index [k] fetches physical [loc k] scaled by [scale k]. *)
  List.fold_left
    (fun (loc, scale) f ->
      match Shape.perm_sigma f with
      | Some sigma ->
          ( (fun k -> loc (sigma k)),
            Option.map (fun s k -> s (sigma k)) scale )
      | None -> (
          match Shape.diag_entry f with
          | Some d ->
              let scale' =
                match scale with
                | None -> d
                | Some s -> fun k -> Complex.mul (d k) (s k)
              in
              (loc, Some scale')
          | None -> assert false))
    ((fun k -> k), None)
    decors

let merge_mu a b =
  match (a, b) with
  | None, m | m, None -> m
  | Some x, Some y -> Some (max x y)

(* Largest smp(p, µ)/CacheTensor tag anywhere inside a formula.  Data
   factors never become passes of their own under loop merging, so the
   µ tag of a [CacheTensor]-wrapped permutation must be attributed to
   the computation pass that absorbs it. *)
let rec formula_mu (f : Formula.t) =
  match f with
  | CacheTensor (a, mu) -> merge_mu (Some mu) (formula_mu a)
  | Smp (_, mu, a) -> merge_mu (Some mu) (formula_mu a)
  | Tensor (a, b) -> merge_mu (formula_mu a) (formula_mu b)
  | ParTensor (_, a) | Vec (_, a) | VTensor (a, _) -> formula_mu a
  | Compose fs | DirectSum fs | ParDirectSum fs ->
      List.fold_left (fun acc g -> merge_mu acc (formula_mu g)) None fs
  | DFT _ | WHT _ | I _ | Perm _ | Diag _ | VShuffle _ -> None

let invert_local dim sigma =
  let inv = Array.make dim 0 in
  for k = 0 to dim - 1 do
    inv.(sigma k) <- k
  done;
  fun s -> inv.(s)

let rec compile ~explicit ~emit embed (f : Formula.t) =
  match f with
  | DFT r ->
      if r > Codelet.max_radix then
        raise
          (Unsupported
             (Printf.sprintf "DFT_%d leaf exceeds max codelet radix %d" r
                Codelet.max_radix));
      emit_leaf ~emit embed (Codelet.dft r)
  | WHT r ->
      if r > Codelet.max_radix then
        raise (Unsupported (Printf.sprintf "WHT_%d leaf too large" r));
      emit_leaf ~emit embed (Codelet.wht r)
  | I _ -> emit_data ~emit embed (fun k -> k) None
  | Perm p -> emit_data ~emit embed (Perm.gather p) None
  | Diag d -> emit_data ~emit embed (fun k -> k) (Some (Diag.entry d))
  | Tensor (I m, a) ->
      let da = Formula.dim a in
      compile ~explicit ~emit
        {
          count = embed.count * m;
          dim = da;
          in_of =
            (fun it k -> embed.in_of (it / m) ((it mod m * da) + k));
          out_of =
            (fun it k -> embed.out_of (it / m) ((it mod m * da) + k));
          scale =
            Option.map
              (fun s it k -> s (it / m) ((it mod m * da) + k))
              embed.scale;
          par = embed.par;
          mu = embed.mu;
          vec = embed.vec;
          hint = embed.hint @ [ m ];
        }
        a
  | Tensor (a, I q) ->
      compile ~explicit ~emit
        {
          count = embed.count * q;
          dim = Formula.dim a;
          in_of = (fun it k -> embed.in_of (it / q) ((k * q) + (it mod q)));
          out_of = (fun it k -> embed.out_of (it / q) ((k * q) + (it mod q)));
          scale =
            Option.map
              (fun s it k -> s (it / q) ((k * q) + (it mod q)))
              embed.scale;
          par = embed.par;
          mu = embed.mu;
          vec = embed.vec;
          hint = embed.hint @ [ q ];
        }
        a
  | Tensor (a, b) ->
      (* A ⊗ B = (A ⊗ I)(I ⊗ B): a two-pass chain. *)
      let na = Formula.dim a and nb = Formula.dim b in
      compile_chain ~explicit ~emit embed
        [ Formula.Tensor (a, I nb); Formula.Tensor (I na, b) ]
  | ParTensor (p, a) ->
      let da = Formula.dim a in
      compile ~explicit ~emit
        {
          count = embed.count * p;
          dim = da;
          in_of = (fun it k -> embed.in_of (it / p) ((it mod p * da) + k));
          out_of = (fun it k -> embed.out_of (it / p) ((it mod p * da) + k));
          scale =
            Option.map
              (fun s it k -> s (it / p) ((it mod p * da) + k))
              embed.scale;
          par = (match embed.par with None -> Some p | some -> some);
          mu = embed.mu;
          vec = embed.vec;
          hint = embed.hint @ [ p ];
        }
        a
  | CacheTensor (a, mu) ->
      (* Outermost cache-line tag wins, like [par]. *)
      let embed =
        { embed with mu = (match embed.mu with None -> Some mu | s -> s) }
      in
      compile ~explicit ~emit embed (Tensor (a, I mu))
  | Compose fs -> compile_chain ~explicit ~emit embed fs
  | (DirectSum _ | ParDirectSum _) as f -> (
      match Shape.diag_entry f with
      | Some d -> emit_data ~emit embed (fun k -> k) (Some d)
      | None ->
          raise
            (Unsupported
               "general (non-diagonal) direct sums are outside the paper's \
                rule space"))
  | Smp (_, mu, a) ->
      let embed =
        { embed with mu = (match embed.mu with None -> Some mu | s -> s) }
      in
      compile ~explicit ~emit embed a
  | Vec (_, a) -> compile ~explicit ~emit embed a
  | VTensor (a, nu) ->
      (* the ν-way block structure survives loop merging as a tag on the
         emitted pass; backends re-verify lane legality structurally *)
      let embed =
        { embed with vec = (match embed.vec with None -> Some nu | s -> s) }
      in
      compile ~explicit ~emit embed (Tensor (a, I nu))
  | VShuffle (k, nu) ->
      let embed =
        { embed with vec = (match embed.vec with None -> Some nu | s -> s) }
      in
      compile ~explicit ~emit embed
        (Tensor (I k, Perm (Perm.L (nu * nu, nu))))

and emit_leaf ~emit embed kernel =
  emit
    {
      count = embed.count;
      radix = kernel.Codelet.radix;
      par = embed.par;
      mu = embed.mu;
      vec = embed.vec;
      kernel;
      gather = embed.in_of;
      scatter = embed.out_of;
      scale = embed.scale;
      hint = embed.hint;
    }

(* An explicit data pass (radix 1): output element (it, k) is
   [scale_local k · embed.scale (it, σ k) · x (in_of (it, σ k))]. *)
and emit_data ~emit embed sigma scale_local =
  let d = embed.dim in
  let scale =
    match (scale_local, embed.scale) with
    | None, None -> None
    | _ ->
        Some
          (fun it (_l : int) ->
            let e = it / d and k = it mod d in
            let s1 =
              match scale_local with Some s -> s k | None -> Complex.one
            in
            match embed.scale with
            | Some s -> Complex.mul s1 (s e (sigma k))
            | None -> s1)
  in
  emit
    {
      count = embed.count * d;
      radix = 1;
      par = embed.par;
      mu = embed.mu;
      vec = embed.vec;
      kernel = Codelet.dft 1;
      gather = (fun it _l -> embed.in_of (it / d) (sigma (it mod d)));
      scatter = (fun it _l -> embed.out_of (it / d) (it mod d));
      scale;
      hint = embed.hint @ [ d ];
    }

and compile_chain ~explicit ~emit embed factors =
  let d = embed.dim in
  (* Partition, in execution order (reverse product order), into compute
     segments each carrying the data factors executed just before it. *)
  let exec_order = List.rev factors in
  let is_decor f = (not explicit) && Shape.is_data f in
  let segs, leading =
    let rec go pending segs = function
      | [] -> (List.rev segs, List.rev pending)
      | f :: rest ->
          if is_decor f then go (f :: pending) segs rest
          else go [] ((f, List.rev pending) :: segs) rest
    in
    go [] [] exec_order
  in
  let decors_mu fs =
    List.fold_left (fun acc g -> merge_mu acc (formula_mu g)) None fs
  in
  match segs with
  | [] ->
      (* Pure data chain: one merged explicit pass. *)
      let loc, scale = merge_decors leading in
      emit_data ~emit
        { embed with mu = merge_mu embed.mu (decors_mu leading) }
        loc scale
  | _ ->
      let nsegs = List.length segs in
      let trail_loc, trail_scale = merge_decors leading in
      let trail_is_id = leading = [] in
      let inv_trail =
        if trail_is_id then fun k -> k else invert_local d trail_loc
      in
      List.iteri
        (fun idx (comp, decors) ->
          let loc, lscale = merge_decors decors in
          let first = idx = 0 and last = idx = nsegs - 1 in
          let in_of it k =
            let k' = loc k in
            if first then embed.in_of it k' else (it * d) + k'
          in
          let scale =
            let local = Option.map (fun s (_ : int) k -> s k) lscale in
            if first then
              (* the embedding's pending scale lives in the chain input
                 space: apply it at the fetched position. *)
              compose_scale local
                (Option.map (fun s it k -> s it (loc k)) embed.scale)
            else local
          in
          let out_of it k =
            if last then
              if trail_is_id then embed.out_of it k
              else embed.out_of it (inv_trail k)
            else (it * d) + k
          in
          let scale =
            if last then (
              (match trail_scale with
              | Some _ ->
                  raise
                    (Unsupported
                       "trailing diagonal (store-scale) not supported; \
                        diagonals must have a computation to their left")
              | None -> ());
              scale)
            else scale
          in
          let mu =
            (* a µ-tagged data factor executes as part of the pass that
               absorbs it: its decors' tags for every segment, plus the
               chain's trailing factors for the last one *)
            merge_mu
              (merge_mu embed.mu (decors_mu decors))
              (if last then decors_mu leading else None)
          in
          compile ~explicit ~emit
            {
              count = embed.count;
              dim = d;
              in_of;
              out_of;
              scale;
              par = embed.par;
              mu;
              vec = embed.vec;
              hint = embed.hint;
            }
            comp)
        segs

let of_formula ?(explicit_data = false) f =
  let n = Formula.dim f in
  let acc = ref [] in
  let emit p = acc := p :: !acc in
  let root =
    {
      count = 1;
      dim = n;
      in_of = (fun _ k -> k);
      out_of = (fun _ k -> k);
      scale = None;
      par = None;
      mu = None;
      vec = None;
      hint = [];
    }
  in
  compile ~explicit:explicit_data ~emit root f;
  { n; passes = List.rev !acc }

let pass_flops (p : pass) =
  let tw = match p.scale with Some _ -> 6 * p.radix | None -> 0 in
  p.count * (p.kernel.Codelet.flops + tw)

let total_flops t = List.fold_left (fun acc p -> acc + pass_flops p) 0 t.passes

let validate t =
  List.iter
    (fun (p : pass) ->
      let written = Array.make t.n false in
      for i = 0 to p.count - 1 do
        for l = 0 to p.radix - 1 do
          let g = p.gather i l and s = p.scatter i l in
          if g < 0 || g >= t.n then
            failwith
              (Printf.sprintf "Ir.validate: gather out of range (%d)" g);
          if s < 0 || s >= t.n then
            failwith
              (Printf.sprintf "Ir.validate: scatter out of range (%d)" s);
          if written.(s) then
            failwith
              (Printf.sprintf "Ir.validate: double write at %d" s);
          written.(s) <- true
        done
      done;
      if p.count * p.radix <> t.n then
        failwith "Ir.validate: pass does not cover the vector")
    t.passes

(* Tiled transpose pass for 2D plans: relocate a row-major [rows]x[cols]
   matrix into its column-major (transposed) image, walking [tile]x[tile]
   cache blocks so each block's loads and stores stay within a few cache
   lines regardless of the matrix extent.  One iteration copies [tile]
   consecutive elements of one row of a block (gather stride 1, scatter
   stride [rows]) — affine in the element index, so materialization
   recovers strided addressing and the ν/µ machinery applies unchanged.
   Iteration order: column blocks outermost, then row blocks, then rows
   within the block (hint [cols/tile; rows/tile; tile]). *)
let transpose_pass ~rows ~cols ~tile ?par ?mu () =
  if tile < 1 then invalid_arg "Ir.transpose_pass: tile >= 1";
  if rows mod tile <> 0 || cols mod tile <> 0 then
    invalid_arg "Ir.transpose_pass: tile must divide both extents";
  let n = rows * cols in
  let rblk = rows / tile in
  let decomp it =
    let cb = it / (rblk * tile) in
    let rem = it mod (rblk * tile) in
    (cb, rem / tile, rem mod tile)
  in
  {
    count = n / tile;
    radix = tile;
    par;
    mu;
    vec = None;
    kernel = Codelet.copy tile;
    gather =
      (fun it l ->
        let cb, rb, ri = decomp it in
        (((rb * tile) + ri) * cols) + (cb * tile) + l);
    scatter =
      (fun it l ->
        let cb, rb, ri = decomp it in
        (((cb * tile) + l) * rows) + (rb * tile) + ri);
    scale = None;
    hint = [ cols / tile; rblk; tile ];
  }
