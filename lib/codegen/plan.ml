type addressing =
  | Strided of {
      exts : int array;  (** loop extents, outermost first *)
      gstrs : int array;  (** gather stride per loop level *)
      sstrs : int array;
      g0 : int;
      s0 : int;
      gl : int;  (** gather stride per codelet element *)
      sl : int;
    }
  | Indexed of { gidx : int array; sidx : int array }

type pass = {
  count : int;
  radix : int;
  par : int option;
  kernel : Codelet.t;
  addr : addressing;
  tw : float array option;
  flops : int;
}

type t = {
  n : int;
  passes : pass array;
  tmp_a : float array;
  tmp_b : float array;
}

let affine_check_threshold = 1 lsl 16

(* Decompose a flat iteration index into digits along [exts]. *)
let digits exts =
  let k = Array.length exts in
  let suffix = Array.make (k + 1) 1 in
  for j = k - 1 downto 0 do
    suffix.(j) <- suffix.(j + 1) * exts.(j)
  done;
  fun i j -> i / suffix.(j + 1) mod exts.(j)

(* Test whether [f i l] equals [f00 + Σ_j digit_j(i)·strs_j + l·dl] for the
   loop structure [exts], returning the strides when it does. *)
let detect ~count ~radix ~exts f =
  let k = Array.length exts in
  let dig = digits exts in
  let f00 = f 0 0 in
  let dl = if radix > 1 then f 0 1 - f00 else 0 in
  let suffix = Array.make (k + 1) 1 in
  for j = k - 1 downto 0 do
    suffix.(j) <- suffix.(j + 1) * exts.(j)
  done;
  let strs =
    Array.init k (fun j ->
        if exts.(j) > 1 then f suffix.(j + 1) 0 - f00 else 0)
  in
  let check i l =
    let acc = ref (f00 + (l * dl)) in
    for j = 0 to k - 1 do
      acc := !acc + (dig i j * strs.(j))
    done;
    f i l = !acc
  in
  let ok = ref true in
  (try
     if count * radix <= affine_check_threshold then
       for i = 0 to count - 1 do
         for l = 0 to radix - 1 do
           if not (check i l) then (
             ok := false;
             raise Exit)
         done
       done
     else begin
       (* Deterministic dense sample: boundaries, powers of two and an
          even spread.  Our compiler only produces per-level affine maps;
          this guards against compiler bugs, not adversarial input. *)
       let samples = 1024 in
       for s = 0 to samples - 1 do
         let i = s * (count - 1) / (samples - 1) in
         for l = 0 to radix - 1 do
           if not (check i l) then (
             ok := false;
             raise Exit)
         done
       done;
       let i = ref 1 in
       while !i < count do
         List.iter
           (fun j ->
             if j >= 0 && j < count && not (check j 0) then (
               ok := false;
               raise Exit))
           [ !i - 1; !i; !i + 1 ];
         i := !i * 2
       done
     end
   with Exit -> ());
  if !ok then Some (f00, strs, dl) else None

let materialize_pass (p : Ir.pass) : pass =
  let exts =
    let h = List.filter (fun e -> e > 1) p.hint in
    let h = if h = [] then [ p.count ] else h in
    Array.of_list h
  in
  let exts =
    if Array.fold_left ( * ) 1 exts = p.count then exts else [| p.count |]
  in
  let addr =
    match
      ( detect ~count:p.count ~radix:p.radix ~exts p.gather,
        detect ~count:p.count ~radix:p.radix ~exts p.scatter )
    with
    | Some (g0, gstrs, gl), Some (s0, sstrs, sl) ->
        Strided { exts; gstrs; sstrs; g0; s0; gl; sl }
    | _ ->
        let size = p.count * p.radix in
        let gidx = Array.make size 0 and sidx = Array.make size 0 in
        for i = 0 to p.count - 1 do
          for l = 0 to p.radix - 1 do
            gidx.((i * p.radix) + l) <- p.gather i l;
            sidx.((i * p.radix) + l) <- p.scatter i l
          done
        done;
        Indexed { gidx; sidx }
  in
  let tw =
    Option.map
      (fun s ->
        let table = Array.make (2 * p.count * p.radix) 0.0 in
        for i = 0 to p.count - 1 do
          for l = 0 to p.radix - 1 do
            let (z : Complex.t) = s i l in
            table.(2 * ((i * p.radix) + l)) <- z.re;
            table.((2 * ((i * p.radix) + l)) + 1) <- z.im
          done
        done;
        table)
      p.scale
  in
  {
    count = p.count;
    radix = p.radix;
    par = p.par;
    kernel = p.kernel;
    addr;
    tw;
    flops = Ir.pass_flops p;
  }

let of_ir (ir : Ir.t) =
  let passes = Array.of_list (List.map materialize_pass ir.passes) in
  let need_tmp = Array.length passes > 1 in
  let tmp_size = if need_tmp then 2 * ir.n else 0 in
  {
    n = ir.n;
    passes;
    tmp_a = Array.make tmp_size 0.0;
    tmp_b = Array.make (if Array.length passes > 2 then tmp_size else 0) 0.0;
  }

let of_formula ?explicit_data f = of_ir (Ir.of_formula ?explicit_data f)

let clone t =
  {
    t with
    tmp_a = Array.make (Array.length t.tmp_a) 0.0;
    tmp_b = Array.make (Array.length t.tmp_b) 0.0;
  }

(* Run iterations [lo, hi) of a strided pass with an odometer: per-level
   bases are updated incrementally, so the inner loop is straight-line. *)
let run_strided ~radix ~exts ~gstrs ~sstrs ~g0 ~s0 ~gl ~sl ~lo ~hi
    (body : int -> int -> int -> unit) =
  let k = Array.length exts in
  let dig = Array.make k 0 in
  (* initialize digits and bases for [lo] *)
  let suffix = Array.make (k + 1) 1 in
  for j = k - 1 downto 0 do
    suffix.(j) <- suffix.(j + 1) * exts.(j)
  done;
  let bg = ref g0 and bs = ref s0 in
  for j = 0 to k - 1 do
    dig.(j) <- lo / suffix.(j + 1) mod exts.(j);
    bg := !bg + (dig.(j) * gstrs.(j));
    bs := !bs + (dig.(j) * sstrs.(j))
  done;
  ignore radix;
  ignore gl;
  ignore sl;
  for i = lo to hi - 1 do
    body i !bg !bs;
    (* advance the odometer *)
    let j = ref (k - 1) in
    let continue = ref true in
    while !continue do
      dig.(!j) <- dig.(!j) + 1;
      bg := !bg + gstrs.(!j);
      bs := !bs + sstrs.(!j);
      if dig.(!j) = exts.(!j) && !j > 0 then begin
        dig.(!j) <- 0;
        bg := !bg - (exts.(!j) * gstrs.(!j));
        bs := !bs - (exts.(!j) * sstrs.(!j));
        decr j
      end
      else continue := false
    done
  done

let run_pass_range p ~src ~dst ~lo ~hi =
  let r = p.radix in
  match (p.addr, p.tw) with
  | Strided { exts; gstrs; sstrs; g0; s0; gl; sl }, None ->
      let k = p.kernel.Codelet.strided in
      run_strided ~radix:r ~exts ~gstrs ~sstrs ~g0 ~s0 ~gl ~sl ~lo ~hi
        (fun _i bg bs -> k src bg gl dst bs sl)
  | Strided { exts; gstrs; sstrs; g0; s0; gl; sl }, Some tw ->
      let k = p.kernel.Codelet.strided_tw in
      run_strided ~radix:r ~exts ~gstrs ~sstrs ~g0 ~s0 ~gl ~sl ~lo ~hi
        (fun i bg bs -> k src bg gl dst bs sl tw (i * r))
  | Indexed { gidx; sidx }, None ->
      let k = p.kernel.Codelet.indexed in
      for i = lo to hi - 1 do
        k src gidx (i * r) dst sidx (i * r)
      done
  | Indexed { gidx; sidx }, Some tw ->
      let k = p.kernel.Codelet.indexed_tw in
      for i = lo to hi - 1 do
        k src gidx (i * r) dst sidx (i * r) tw (i * r)
      done

let src_dst_of_pass t ~x ~y k =
  let last = Array.length t.passes - 1 in
  let buf_out j =
    if j = last then y else if j mod 2 = 0 then t.tmp_a else t.tmp_b
  in
  let src = if k = 0 then x else buf_out (k - 1) in
  (src, buf_out k)

let execute t x y =
  if Array.length x <> 2 * t.n || Array.length y <> 2 * t.n then
    invalid_arg "Plan.execute: wrong vector length";
  Array.iteri
    (fun k p ->
      let src, dst = src_dst_of_pass t ~x ~y k in
      run_pass_range p ~src ~dst ~lo:0 ~hi:p.count)
    t.passes

let total_flops t = Array.fold_left (fun acc p -> acc + p.flops) 0 t.passes

let describe t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "plan n=%d, %d passes\n" t.n (Array.length t.passes));
  Array.iteri
    (fun k p ->
      Buffer.add_string b
        (Printf.sprintf "  pass %d: %-14s count=%-8d %s%s%s\n" k
           p.kernel.Codelet.name p.count
           (match p.addr with
           | Strided { exts; _ } ->
               Printf.sprintf "strided[%s]"
                 (String.concat "x"
                    (Array.to_list (Array.map string_of_int exts)))
           | Indexed _ -> "indexed")
           (match p.tw with Some _ -> " +twiddle" | None -> "")
           (match p.par with
           | Some q -> Printf.sprintf " parallel(%d)" q
           | None -> "")))
    t.passes;
  Buffer.contents b
