type addressing =
  | Strided of {
      exts : int array;  (** loop extents, outermost first *)
      suffix : int array;
          (** suffix products of [exts]: [suffix.(j)] = Π extents from
              level [j]; length [Array.length exts + 1], innermost 1 *)
      gstrs : int array;  (** gather stride per loop level *)
      sstrs : int array;
      g0 : int;
      s0 : int;
      gl : int;  (** gather stride per codelet element *)
      sl : int;
    }
  | Indexed of { gidx : int array; sidx : int array }

type pass = {
  count : int;
  radix : int;
  par : int option;
  mu : int option;
  kernel : Codelet.t;
  addr : addressing;
  tw : float array option;
  flops : int;
}

(* Per-worker execution context: codelet scratch plus the odometer digit
   buffer, preallocated so the pass loops allocate nothing. *)
type ctx = { cscratch : Codelet.scratch; dig : int array }

type t = {
  n : int;
  passes : pass array;
  tmp_a : float array;
  tmp_b : float array;
  ctx : ctx;  (** Scratch of the sequential executor (worker 0). *)
  mutable wctx : ctx array;
      (** Per-worker scratch, grown by [ensure_worker_ctxs]. *)
  mutable elision : (int * bool array) list;
      (** Cache of barrier-elision masks, keyed by worker count
          (maintained by [Par_exec.elision_mask]). *)
  mutable misaligned : (int * int) list;
      (** Cache of the false-sharing check: worker count -> number of
          cache lines written by more than one worker under the aligned
          Block partition (maintained by [Par_exec]). *)
}

let max_depth passes =
  Array.fold_left
    (fun acc p ->
      match p.addr with
      | Strided { exts; _ } -> max acc (Array.length exts)
      | Indexed _ -> acc)
    1 passes

let make_ctx_for passes =
  { cscratch = Codelet.make_scratch (); dig = Array.make (max_depth passes) 0 }

let make_ctx t = make_ctx_for t.passes
let context t = t.ctx

let ensure_worker_ctxs t workers =
  let len = Array.length t.wctx in
  if len < workers then
    t.wctx <-
      Array.init workers (fun i ->
          if i < len then t.wctx.(i) else make_ctx_for t.passes)

let worker_ctx t w =
  ensure_worker_ctxs t (w + 1);
  t.wctx.(w)

let affine_check_threshold = 1 lsl 16

(* Decompose a flat iteration index into digits along [exts]. *)
let digits exts =
  let k = Array.length exts in
  let suffix = Array.make (k + 1) 1 in
  for j = k - 1 downto 0 do
    suffix.(j) <- suffix.(j + 1) * exts.(j)
  done;
  fun i j -> i / suffix.(j + 1) mod exts.(j)

(* Test whether [f i l] equals [f00 + Σ_j digit_j(i)·strs_j + l·dl] for the
   loop structure [exts], returning the strides when it does. *)
let detect ~count ~radix ~exts f =
  let k = Array.length exts in
  let dig = digits exts in
  let f00 = f 0 0 in
  let dl = if radix > 1 then f 0 1 - f00 else 0 in
  let suffix = Array.make (k + 1) 1 in
  for j = k - 1 downto 0 do
    suffix.(j) <- suffix.(j + 1) * exts.(j)
  done;
  let strs =
    Array.init k (fun j ->
        if exts.(j) > 1 then f suffix.(j + 1) 0 - f00 else 0)
  in
  let check i l =
    let acc = ref (f00 + (l * dl)) in
    for j = 0 to k - 1 do
      acc := !acc + (dig i j * strs.(j))
    done;
    f i l = !acc
  in
  let ok = ref true in
  (try
     if count * radix <= affine_check_threshold then
       for i = 0 to count - 1 do
         for l = 0 to radix - 1 do
           if not (check i l) then (
             ok := false;
             raise Exit)
         done
       done
     else begin
       (* Deterministic dense sample: boundaries, powers of two and an
          even spread.  Our compiler only produces per-level affine maps;
          this guards against compiler bugs, not adversarial input. *)
       let samples = 1024 in
       for s = 0 to samples - 1 do
         let i = s * (count - 1) / (samples - 1) in
         for l = 0 to radix - 1 do
           if not (check i l) then (
             ok := false;
             raise Exit)
         done
       done;
       let i = ref 1 in
       while !i < count do
         List.iter
           (fun j ->
             if j >= 0 && j < count && not (check j 0) then (
               ok := false;
               raise Exit))
           [ !i - 1; !i; !i + 1 ];
         i := !i * 2
       done
     end
   with Exit -> ());
  if !ok then Some (f00, strs, dl) else None

let materialize_pass (p : Ir.pass) : pass =
  let exts =
    let h = List.filter (fun e -> e > 1) p.hint in
    let h = if h = [] then [ p.count ] else h in
    Array.of_list h
  in
  let exts =
    if Array.fold_left ( * ) 1 exts = p.count then exts else [| p.count |]
  in
  let addr =
    match
      ( detect ~count:p.count ~radix:p.radix ~exts p.gather,
        detect ~count:p.count ~radix:p.radix ~exts p.scatter )
    with
    | Some (g0, gstrs, gl), Some (s0, sstrs, sl) ->
        let k = Array.length exts in
        let suffix = Array.make (k + 1) 1 in
        for j = k - 1 downto 0 do
          suffix.(j) <- suffix.(j + 1) * exts.(j)
        done;
        Strided { exts; suffix; gstrs; sstrs; g0; s0; gl; sl }
    | _ ->
        let size = p.count * p.radix in
        let gidx = Array.make size 0 and sidx = Array.make size 0 in
        for i = 0 to p.count - 1 do
          for l = 0 to p.radix - 1 do
            gidx.((i * p.radix) + l) <- p.gather i l;
            sidx.((i * p.radix) + l) <- p.scatter i l
          done
        done;
        Indexed { gidx; sidx }
  in
  let tw =
    Option.map
      (fun s ->
        let table = Array.make (2 * p.count * p.radix) 0.0 in
        for i = 0 to p.count - 1 do
          for l = 0 to p.radix - 1 do
            let (z : Complex.t) = s i l in
            table.(2 * ((i * p.radix) + l)) <- z.re;
            table.((2 * ((i * p.radix) + l)) + 1) <- z.im
          done
        done;
        table)
      p.scale
  in
  {
    count = p.count;
    radix = p.radix;
    par = p.par;
    mu = p.mu;
    kernel = p.kernel;
    addr;
    tw;
    flops = Ir.pass_flops p;
  }

let of_ir ?(fuse = true) ?(baseline = false) (ir : Ir.t) =
  let ir = if fuse then Optimize.fuse_data ir else ir in
  let passes = Array.of_list (List.map materialize_pass ir.passes) in
  let passes =
    if baseline then
      Array.map (fun p -> { p with kernel = Codelet.legacy p.kernel }) passes
    else passes
  in
  let need_tmp = Array.length passes > 1 in
  let tmp_size = if need_tmp then 2 * ir.n else 0 in
  {
    n = ir.n;
    passes;
    tmp_a = Array.make tmp_size 0.0;
    tmp_b = Array.make (if Array.length passes > 2 then tmp_size else 0) 0.0;
    ctx = make_ctx_for passes;
    wctx = [||];
    elision = [];
    misaligned = [];
  }

let of_formula ?fuse ?baseline ?(explicit_data = false) f =
  (* [explicit_data] plans exist to show the unmerged execution; fusing
     them back would defeat the point, so fusion defaults off for them. *)
  let fuse = match fuse with Some b -> b | None -> not explicit_data in
  of_ir ~fuse ?baseline (Ir.of_formula ~explicit_data f)

let clone t =
  {
    t with
    tmp_a = Array.make (Array.length t.tmp_a) 0.0;
    tmp_b = Array.make (Array.length t.tmp_b) 0.0;
    ctx = make_ctx_for t.passes;
    wctx = [||];
  }

(* ------------------------------------------------------------------ *)
(* Pass execution.  Strided passes run an odometer: per-level bases are
   updated incrementally so the inner loop is straight-line integer
   arithmetic plus one kernel call — no closures, no allocation.  The
   four (twiddle × unit-stride) variants are monomorphized by hand; the
   odometer block is intentionally duplicated in each, because hoisting
   it into a local function would box the running state.  This subsumes
   the old [run_strided] helper (whose [radix]/[gl]/[sl] parameters were
   dead). *)

let run_pass_range ctx p ~src ~dst ~lo ~hi =
  let r = p.radix in
  let cs = ctx.cscratch in
  match p.addr with
  | Strided { exts; suffix; gstrs; sstrs; g0; s0; gl; sl } -> (
      let k = Array.length exts in
      let dig = ctx.dig in
      let bg = ref g0 and bs = ref s0 in
      for j = 0 to k - 1 do
        let d = lo / suffix.(j + 1) mod exts.(j) in
        dig.(j) <- d;
        bg := !bg + (d * gstrs.(j));
        bs := !bs + (d * sstrs.(j))
      done;
      match p.tw with
      | None ->
          if gl = 1 && sl = 1 then begin
            let kern = p.kernel.Codelet.strided_u in
            for _i = lo to hi - 1 do
              kern cs src !bg dst !bs;
              let j = ref (k - 1) in
              let moving = ref true in
              while !moving do
                dig.(!j) <- dig.(!j) + 1;
                bg := !bg + gstrs.(!j);
                bs := !bs + sstrs.(!j);
                if dig.(!j) = exts.(!j) && !j > 0 then begin
                  dig.(!j) <- 0;
                  bg := !bg - (exts.(!j) * gstrs.(!j));
                  bs := !bs - (exts.(!j) * sstrs.(!j));
                  decr j
                end
                else moving := false
              done
            done
          end
          else begin
            let kern = p.kernel.Codelet.strided in
            for _i = lo to hi - 1 do
              kern cs src !bg gl dst !bs sl;
              let j = ref (k - 1) in
              let moving = ref true in
              while !moving do
                dig.(!j) <- dig.(!j) + 1;
                bg := !bg + gstrs.(!j);
                bs := !bs + sstrs.(!j);
                if dig.(!j) = exts.(!j) && !j > 0 then begin
                  dig.(!j) <- 0;
                  bg := !bg - (exts.(!j) * gstrs.(!j));
                  bs := !bs - (exts.(!j) * sstrs.(!j));
                  decr j
                end
                else moving := false
              done
            done
          end
      | Some tw ->
          if gl = 1 && sl = 1 then begin
            let kern = p.kernel.Codelet.strided_u_tw in
            for i = lo to hi - 1 do
              kern cs src !bg dst !bs tw (i * r);
              let j = ref (k - 1) in
              let moving = ref true in
              while !moving do
                dig.(!j) <- dig.(!j) + 1;
                bg := !bg + gstrs.(!j);
                bs := !bs + sstrs.(!j);
                if dig.(!j) = exts.(!j) && !j > 0 then begin
                  dig.(!j) <- 0;
                  bg := !bg - (exts.(!j) * gstrs.(!j));
                  bs := !bs - (exts.(!j) * sstrs.(!j));
                  decr j
                end
                else moving := false
              done
            done
          end
          else begin
            let kern = p.kernel.Codelet.strided_tw in
            for i = lo to hi - 1 do
              kern cs src !bg gl dst !bs sl tw (i * r);
              let j = ref (k - 1) in
              let moving = ref true in
              while !moving do
                dig.(!j) <- dig.(!j) + 1;
                bg := !bg + gstrs.(!j);
                bs := !bs + sstrs.(!j);
                if dig.(!j) = exts.(!j) && !j > 0 then begin
                  dig.(!j) <- 0;
                  bg := !bg - (exts.(!j) * gstrs.(!j));
                  bs := !bs - (exts.(!j) * sstrs.(!j));
                  decr j
                end
                else moving := false
              done
            done
          end)
  | Indexed { gidx; sidx } -> (
      match p.tw with
      | None ->
          let kern = p.kernel.Codelet.indexed in
          for i = lo to hi - 1 do
            kern cs src gidx (i * r) dst sidx (i * r)
          done
      | Some tw ->
          let kern = p.kernel.Codelet.indexed_tw in
          for i = lo to hi - 1 do
            kern cs src gidx (i * r) dst sidx (i * r) tw (i * r)
          done)

(* Ping-pong buffer schedule: pass 0 reads [x], the last pass writes [y],
   intermediates alternate tmp_a/tmp_b.  Split accessors so the executors
   can resolve buffers without allocating a tuple. *)
let pass_src t ~x k =
  if k = 0 then x else if (k - 1) land 1 = 0 then t.tmp_a else t.tmp_b

let pass_dst t ~y k =
  if k = Array.length t.passes - 1 then y
  else if k land 1 = 0 then t.tmp_a
  else t.tmp_b

let src_dst_of_pass t ~x ~y k = (pass_src t ~x k, pass_dst t ~y k)

let execute t x y =
  if Array.length x <> 2 * t.n || Array.length y <> 2 * t.n then
    invalid_arg "Plan.execute: wrong vector length";
  let last = Array.length t.passes - 1 in
  for k = 0 to last do
    let p = t.passes.(k) in
    let src = if k = 0 then x else if (k - 1) land 1 = 0 then t.tmp_a else t.tmp_b in
    let dst = if k = last then y else if k land 1 = 0 then t.tmp_a else t.tmp_b in
    run_pass_range t.ctx p ~src ~dst ~lo:0 ~hi:p.count
  done

(* Per-iteration address computation (analysis/simulation path — this
   allocates closures and is not used by the executors). *)
let iter_addresses (p : pass) =
  match p.addr with
  | Strided { suffix; exts; gstrs; sstrs; g0; s0; gl; sl } ->
      let k = Array.length exts in
      fun i ->
        let bg = ref g0 and bs = ref s0 in
        for j = 0 to k - 1 do
          let d = i / suffix.(j + 1) mod exts.(j) in
          bg := !bg + (d * gstrs.(j));
          bs := !bs + (d * sstrs.(j))
        done;
        ((fun l -> !bg + (l * gl)), fun l -> !bs + (l * sl))
  | Indexed { gidx; sidx } ->
      fun i ->
        let base = i * p.radix in
        ((fun l -> gidx.(base + l)), fun l -> sidx.(base + l))

let total_flops t = Array.fold_left (fun acc p -> acc + p.flops) 0 t.passes

let describe t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "plan n=%d, %d passes\n" t.n (Array.length t.passes));
  Array.iteri
    (fun k p ->
      Buffer.add_string b
        (Printf.sprintf "  pass %d: %-14s count=%-8d %s%s%s\n" k
           p.kernel.Codelet.name p.count
           (match p.addr with
           | Strided { exts; _ } ->
               Printf.sprintf "strided[%s]"
                 (String.concat "x"
                    (Array.to_list (Array.map string_of_int exts)))
           | Indexed _ -> "indexed")
           (match p.tw with Some _ -> " +twiddle" | None -> "")
           (match p.par with
           | Some q -> Printf.sprintf " parallel(%d)" q
           | None -> "")))
    t.passes;
  Buffer.contents b
