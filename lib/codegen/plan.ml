type addressing =
  | Strided of {
      exts : int array;  (** loop extents, outermost first *)
      suffix : int array;
          (** suffix products of [exts]: [suffix.(j)] = Π extents from
              level [j]; length [Array.length exts + 1], innermost 1 *)
      gstrs : int array;  (** gather stride per loop level *)
      sstrs : int array;
      g0 : int;
      s0 : int;
      gl : int;  (** gather stride per codelet element *)
      sl : int;
    }
  | Indexed of { gidx : int array; sidx : int array }

(* Buffer layout of a plan's vectors: [Interleaved] is the classic
   re,im,re,im float array of 2n; [Split] keeps the same 2n float array
   but as two planes — re at [0,n), im at [n,2n) — executed by planar
   {!Vcodelet}s.  Split plans run the identical pass/range/barrier
   machinery (buffers have the same type and length), so [Par_exec]
   works on them unchanged. *)
type layout = Interleaved | Split

type split_exec = {
  vk : Vcodelet.t;
  im : int;  (** Plane offset (= n) of every buffer of the plan. *)
}

type pass = {
  count : int;
  radix : int;
  par : int option;
  mu : int option;
  vec : int option;
  kernel : Codelet.t;
  addr : addressing;
  tw : float array option;
  flops : int;
  split : split_exec option;
      (** [Some _] iff the plan layout is [Split]: the planar kernel this
          pass runs instead of [kernel]. *)
}

(* Per-worker execution context: codelet scratch plus the odometer digit
   buffer, preallocated so the pass loops allocate nothing. *)
type ctx = { cscratch : Codelet.scratch; dig : int array }

type vreport = {
  vdigest : int;
  mutable vbase : bool;
  mutable vworkers : int list;
}

type t = {
  n : int;
  layout : layout;
  passes : pass array;
  tmp_a : float array;
  tmp_b : float array;
  ctx : ctx;  (** Scratch of the sequential executor (worker 0). *)
  mutable wctx : ctx array;
      (** Per-worker scratch, grown by [ensure_worker_ctxs]. *)
  mutable elision : (int * bool array) list;
      (** Cache of barrier-elision masks, keyed by worker count
          (maintained by [Par_exec.elision_mask]). *)
  mutable misaligned : (int * int) list;
      (** Cache of the false-sharing check: worker count -> number of
          cache lines written by more than one worker under the aligned
          Block partition (maintained by [Par_exec]). *)
  fusion_cert : Optimize.fusion_cert option;
      (** Certificate of the fusion rewrites the plan's IR went through
          ([Some] iff [of_ir ~fuse:true] actually ran the optimizer);
          discharged by [Spiral_validate.check_fusion]. *)
  mutable validation : vreport option;
      (** Validation results, keyed by {!digest} at validation time so a
          mutated plan cannot inherit a stale certificate (maintained by
          [Spiral_validate.validate_plan]). *)
}

let max_depth passes =
  Array.fold_left
    (fun acc p ->
      match p.addr with
      | Strided { exts; _ } -> max acc (Array.length exts)
      | Indexed _ -> acc)
    1 passes

let make_ctx_for passes =
  { cscratch = Codelet.make_scratch (); dig = Array.make (max_depth passes) 0 }

let make_ctx t = make_ctx_for t.passes
let context t = t.ctx

let ensure_worker_ctxs t workers =
  let len = Array.length t.wctx in
  if len < workers then
    t.wctx <-
      Array.init workers (fun i ->
          if i < len then t.wctx.(i) else make_ctx_for t.passes)

let worker_ctx t w =
  ensure_worker_ctxs t (w + 1);
  t.wctx.(w)

let affine_check_threshold = 1 lsl 16

(* Decompose a flat iteration index into digits along [exts]. *)
let digits exts =
  let k = Array.length exts in
  let suffix = Array.make (k + 1) 1 in
  for j = k - 1 downto 0 do
    suffix.(j) <- suffix.(j + 1) * exts.(j)
  done;
  fun i j -> i / suffix.(j + 1) mod exts.(j)

(* Test whether [f i l] equals [f00 + Σ_j digit_j(i)·strs_j + l·dl] for the
   loop structure [exts], returning the strides when it does. *)
let detect ~count ~radix ~exts f =
  let k = Array.length exts in
  let dig = digits exts in
  let f00 = f 0 0 in
  let dl = if radix > 1 then f 0 1 - f00 else 0 in
  let suffix = Array.make (k + 1) 1 in
  for j = k - 1 downto 0 do
    suffix.(j) <- suffix.(j + 1) * exts.(j)
  done;
  let strs =
    Array.init k (fun j ->
        if exts.(j) > 1 then f suffix.(j + 1) 0 - f00 else 0)
  in
  let check i l =
    let acc = ref (f00 + (l * dl)) in
    for j = 0 to k - 1 do
      acc := !acc + (dig i j * strs.(j))
    done;
    f i l = !acc
  in
  let ok = ref true in
  (try
     if count * radix <= affine_check_threshold then
       for i = 0 to count - 1 do
         for l = 0 to radix - 1 do
           if not (check i l) then (
             ok := false;
             raise Exit)
         done
       done
     else begin
       (* Deterministic dense sample: boundaries, powers of two and an
          even spread.  Our compiler only produces per-level affine maps;
          this guards against compiler bugs, not adversarial input. *)
       let samples = 1024 in
       for s = 0 to samples - 1 do
         let i = s * (count - 1) / (samples - 1) in
         for l = 0 to radix - 1 do
           if not (check i l) then (
             ok := false;
             raise Exit)
         done
       done;
       let i = ref 1 in
       while !i < count do
         List.iter
           (fun j ->
             if j >= 0 && j < count && not (check j 0) then (
               ok := false;
               raise Exit))
           [ !i - 1; !i; !i + 1 ];
         i := !i * 2
       done
     end
   with Exit -> ());
  if !ok then Some (f00, strs, dl) else None

let materialize_pass (p : Ir.pass) : pass =
  let exts =
    let h = List.filter (fun e -> e > 1) p.hint in
    let h = if h = [] then [ p.count ] else h in
    Array.of_list h
  in
  let exts =
    if Array.fold_left ( * ) 1 exts = p.count then exts else [| p.count |]
  in
  let addr =
    match
      ( detect ~count:p.count ~radix:p.radix ~exts p.gather,
        detect ~count:p.count ~radix:p.radix ~exts p.scatter )
    with
    | Some (g0, gstrs, gl), Some (s0, sstrs, sl) ->
        let k = Array.length exts in
        let suffix = Array.make (k + 1) 1 in
        for j = k - 1 downto 0 do
          suffix.(j) <- suffix.(j + 1) * exts.(j)
        done;
        Strided { exts; suffix; gstrs; sstrs; g0; s0; gl; sl }
    | _ ->
        let size = p.count * p.radix in
        let gidx = Array.make size 0 and sidx = Array.make size 0 in
        for i = 0 to p.count - 1 do
          for l = 0 to p.radix - 1 do
            gidx.((i * p.radix) + l) <- p.gather i l;
            sidx.((i * p.radix) + l) <- p.scatter i l
          done
        done;
        Indexed { gidx; sidx }
  in
  let tw =
    Option.map
      (fun s ->
        let table = Array.make (2 * p.count * p.radix) 0.0 in
        for i = 0 to p.count - 1 do
          for l = 0 to p.radix - 1 do
            let (z : Complex.t) = s i l in
            table.(2 * ((i * p.radix) + l)) <- z.re;
            table.((2 * ((i * p.radix) + l)) + 1) <- z.im
          done
        done;
        table)
      p.scale
  in
  {
    count = p.count;
    radix = p.radix;
    par = p.par;
    mu = p.mu;
    vec = p.vec;
    kernel = p.kernel;
    addr;
    tw;
    flops = Ir.pass_flops p;
    split = None;
  }

(* A pass of a Split-layout plan gets its planar kernel here.  The ν-lane
   block materializes only when the innermost loop level actually carries
   ν-aligned iterations — loop merging can rotate the tagged lane
   dimension to any level (see {!Ir.pass.vec}), so legality is re-checked
   on the materialized extents, and unblocked passes fall back to scalar
   planar execution. *)
let attach_split ~n (p : pass) =
  let lanes =
    match (p.vec, p.addr) with
    | Some nu, Strided { exts; _ } when nu > 1 ->
        let k = Array.length exts in
        if k > 0 && exts.(k - 1) mod nu = 0 then nu else 1
    | _ -> 1
  in
  Spiral_util.Counters.incr
    (if lanes > 1 then "vec.pass_blocked" else "vec.pass_scalar");
  { p with split = Some { vk = Vcodelet.get ~lanes p.kernel; im = n } }

(* Structural digest over everything validation depends on: pass shapes,
   tags, kernels and the materialized addressing and twiddles.  An
   explicit fold (not [Hashtbl.hash], which truncates its traversal) so
   that any mutation of a pass array entry or its index tables changes
   the digest and invalidates cached validation results.  Large index
   and twiddle tables are sampled at a fixed stride — plenty to catch
   the accidental mutations this guards against. *)
let digest t =
  let h = ref (Hashtbl.hash (t.n, Array.length t.passes, t.layout = Split)) in
  let mix v = h := ((!h * 131) + v) lxor (v lsl 7) in
  let mix_table a =
    let m = Array.length a in
    mix m;
    let step = max 1 (m / 64) in
    let i = ref 0 in
    while !i < m do
      mix a.(!i);
      i := !i + step
    done
  in
  Array.iter
    (fun p ->
      mix p.count;
      mix p.radix;
      mix (match p.par with None -> -1 | Some q -> q);
      mix (match p.mu with None -> -1 | Some m -> 1000 + m);
      mix (match p.vec with None -> -1 | Some v -> 2000 + v);
      mix (Hashtbl.hash p.kernel.Codelet.name);
      mix
        (match p.split with
        | None -> 0
        | Some se -> 3000 + se.vk.Vcodelet.lanes);
      (match p.addr with
      | Strided { exts; gstrs; sstrs; g0; s0; gl; sl; _ } ->
          Array.iter mix exts;
          Array.iter mix gstrs;
          Array.iter mix sstrs;
          mix g0;
          mix s0;
          mix gl;
          mix sl
      | Indexed { gidx; sidx } ->
          mix_table gidx;
          mix_table sidx);
      match p.tw with
      | None -> mix 0
      | Some tw ->
          let m = Array.length tw in
          mix m;
          let step = max 1 (m / 64) in
          let i = ref 0 in
          while !i < m do
            mix (Hashtbl.hash tw.(!i));
            i := !i + step
          done)
    t.passes;
  !h land max_int

let of_ir ?(fuse = true) ?(baseline = false) ?(layout = Interleaved)
    (ir : Ir.t) =
  let ir, fusion_cert =
    if fuse then
      let fused, cert = Optimize.fuse_data_certified ir in
      (fused, Some cert)
    else (ir, None)
  in
  let passes = Array.of_list (List.map materialize_pass ir.passes) in
  let passes =
    if baseline then
      Array.map (fun p -> { p with kernel = Codelet.legacy p.kernel }) passes
    else passes
  in
  let passes =
    match layout with
    | Interleaved -> passes
    | Split -> Array.map (attach_split ~n:ir.n) passes
  in
  let need_tmp = Array.length passes > 1 in
  let tmp_size = if need_tmp then 2 * ir.n else 0 in
  {
    n = ir.n;
    layout;
    passes;
    tmp_a = Array.make tmp_size 0.0;
    tmp_b = Array.make (if Array.length passes > 2 then tmp_size else 0) 0.0;
    ctx = make_ctx_for passes;
    wctx = [||];
    elision = [];
    misaligned = [];
    fusion_cert;
    validation = None;
  }

let of_formula ?fuse ?baseline ?layout ?(explicit_data = false) f =
  (* [explicit_data] plans exist to show the unmerged execution; fusing
     them back would defeat the point, so fusion defaults off for them. *)
  let fuse = match fuse with Some b -> b | None -> not explicit_data in
  of_ir ~fuse ?baseline ?layout (Ir.of_formula ~explicit_data f)

let clone t =
  {
    t with
    tmp_a = Array.make (Array.length t.tmp_a) 0.0;
    tmp_b = Array.make (Array.length t.tmp_b) 0.0;
    ctx = make_ctx_for t.passes;
    wctx = [||];
  }

(* ------------------------------------------------------------------ *)
(* Pass execution.  Strided passes run an odometer: per-level bases are
   updated incrementally so the inner loop is straight-line integer
   arithmetic plus one kernel call — no closures, no allocation.  The
   four (twiddle × unit-stride) variants are monomorphized by hand; the
   odometer block is intentionally duplicated in each, because hoisting
   it into a local function would box the running state.  This subsumes
   the old [run_strided] helper (whose [radix]/[gl]/[sl] parameters were
   dead). *)

let run_interleaved ctx p ~src ~dst ~lo ~hi =
  let r = p.radix in
  let cs = ctx.cscratch in
  match p.addr with
  | Strided { exts; suffix; gstrs; sstrs; g0; s0; gl; sl } -> (
      let k = Array.length exts in
      let dig = ctx.dig in
      let bg = ref g0 and bs = ref s0 in
      for j = 0 to k - 1 do
        let d = lo / suffix.(j + 1) mod exts.(j) in
        dig.(j) <- d;
        bg := !bg + (d * gstrs.(j));
        bs := !bs + (d * sstrs.(j))
      done;
      match p.tw with
      | None ->
          if gl = 1 && sl = 1 then begin
            let kern = p.kernel.Codelet.strided_u in
            for _i = lo to hi - 1 do
              kern cs src !bg dst !bs;
              let j = ref (k - 1) in
              let moving = ref true in
              while !moving do
                dig.(!j) <- dig.(!j) + 1;
                bg := !bg + gstrs.(!j);
                bs := !bs + sstrs.(!j);
                if dig.(!j) = exts.(!j) && !j > 0 then begin
                  dig.(!j) <- 0;
                  bg := !bg - (exts.(!j) * gstrs.(!j));
                  bs := !bs - (exts.(!j) * sstrs.(!j));
                  decr j
                end
                else moving := false
              done
            done
          end
          else begin
            let kern = p.kernel.Codelet.strided in
            for _i = lo to hi - 1 do
              kern cs src !bg gl dst !bs sl;
              let j = ref (k - 1) in
              let moving = ref true in
              while !moving do
                dig.(!j) <- dig.(!j) + 1;
                bg := !bg + gstrs.(!j);
                bs := !bs + sstrs.(!j);
                if dig.(!j) = exts.(!j) && !j > 0 then begin
                  dig.(!j) <- 0;
                  bg := !bg - (exts.(!j) * gstrs.(!j));
                  bs := !bs - (exts.(!j) * sstrs.(!j));
                  decr j
                end
                else moving := false
              done
            done
          end
      | Some tw ->
          if gl = 1 && sl = 1 then begin
            let kern = p.kernel.Codelet.strided_u_tw in
            for i = lo to hi - 1 do
              kern cs src !bg dst !bs tw (i * r);
              let j = ref (k - 1) in
              let moving = ref true in
              while !moving do
                dig.(!j) <- dig.(!j) + 1;
                bg := !bg + gstrs.(!j);
                bs := !bs + sstrs.(!j);
                if dig.(!j) = exts.(!j) && !j > 0 then begin
                  dig.(!j) <- 0;
                  bg := !bg - (exts.(!j) * gstrs.(!j));
                  bs := !bs - (exts.(!j) * sstrs.(!j));
                  decr j
                end
                else moving := false
              done
            done
          end
          else begin
            let kern = p.kernel.Codelet.strided_tw in
            for i = lo to hi - 1 do
              kern cs src !bg gl dst !bs sl tw (i * r);
              let j = ref (k - 1) in
              let moving = ref true in
              while !moving do
                dig.(!j) <- dig.(!j) + 1;
                bg := !bg + gstrs.(!j);
                bs := !bs + sstrs.(!j);
                if dig.(!j) = exts.(!j) && !j > 0 then begin
                  dig.(!j) <- 0;
                  bg := !bg - (exts.(!j) * gstrs.(!j));
                  bs := !bs - (exts.(!j) * sstrs.(!j));
                  decr j
                end
                else moving := false
              done
            done
          end)
  | Indexed { gidx; sidx } -> (
      match p.tw with
      | None ->
          let kern = p.kernel.Codelet.indexed in
          for i = lo to hi - 1 do
            kern cs src gidx (i * r) dst sidx (i * r)
          done
      | Some tw ->
          let kern = p.kernel.Codelet.indexed_tw in
          for i = lo to hi - 1 do
            kern cs src gidx (i * r) dst sidx (i * r) tw (i * r)
          done)

(* Planar (split re/im) pass execution.  The odometer is the same as the
   interleaved path, but advances by the lane count ν when the innermost
   digit is ν-aligned and the remaining range covers a whole block, so a
   blocked planar kernel ([Vcodelet.blk]) runs ν consecutive iterations
   per call: consecutive flat iterations differ only in the innermost
   digit within a block (ν divides the innermost extent), which also
   means blocks never straddle a carry and their twiddle indices are the
   [lanes × radix] panel starting at [i·r]. *)
let run_split ctx p se ~src ~dst ~lo ~hi =
  let r = p.radix in
  let cs = ctx.cscratch in
  let vk = se.vk and im = se.im in
  match p.addr with
  | Strided { exts; suffix; gstrs; sstrs; g0; s0; gl; sl } -> (
      let k = Array.length exts in
      let dig = ctx.dig in
      let bg = ref g0 and bs = ref s0 in
      for j = 0 to k - 1 do
        let d = lo / suffix.(j + 1) mod exts.(j) in
        dig.(j) <- d;
        bg := !bg + (d * gstrs.(j));
        bs := !bs + (d * sstrs.(j))
      done;
      let nu = vk.Vcodelet.lanes in
      let ki = k - 1 in
      let gv = gstrs.(ki) and sv = sstrs.(ki) in
      (* the odometer advance is written out in both twiddle branches
         (rather than shared via a local function) so no closure
         captures [bg]/[bs]: all refs stay local and unboxed, keeping
         the executor allocation-free *)
      match p.tw with
      | None ->
          let blk = vk.Vcodelet.blk and s1 = vk.Vcodelet.s1 in
          let i = ref lo in
          while !i < hi do
            let step =
              if nu > 1 && dig.(ki) mod nu = 0 && !i + nu <= hi then begin
                blk cs im src !bg gl gv dst !bs sl sv;
                nu
              end
              else begin
                s1 cs im src !bg gl dst !bs sl;
                1
              end
            in
            i := !i + step;
            dig.(ki) <- dig.(ki) + step;
            bg := !bg + (step * gv);
            bs := !bs + (step * sv);
            let j = ref ki in
            while dig.(!j) = exts.(!j) && !j > 0 do
              dig.(!j) <- 0;
              bg := !bg - (exts.(!j) * gstrs.(!j));
              bs := !bs - (exts.(!j) * sstrs.(!j));
              decr j;
              dig.(!j) <- dig.(!j) + 1;
              bg := !bg + gstrs.(!j);
              bs := !bs + sstrs.(!j)
            done
          done
      | Some tw ->
          let blk_tw = vk.Vcodelet.blk_tw and s1_tw = vk.Vcodelet.s1_tw in
          let i = ref lo in
          while !i < hi do
            let step =
              if nu > 1 && dig.(ki) mod nu = 0 && !i + nu <= hi then begin
                blk_tw cs im src !bg gl gv dst !bs sl sv tw (!i * r);
                nu
              end
              else begin
                s1_tw cs im src !bg gl dst !bs sl tw (!i * r);
                1
              end
            in
            i := !i + step;
            dig.(ki) <- dig.(ki) + step;
            bg := !bg + (step * gv);
            bs := !bs + (step * sv);
            let j = ref ki in
            while dig.(!j) = exts.(!j) && !j > 0 do
              dig.(!j) <- 0;
              bg := !bg - (exts.(!j) * gstrs.(!j));
              bs := !bs - (exts.(!j) * sstrs.(!j));
              decr j;
              dig.(!j) <- dig.(!j) + 1;
              bg := !bg + gstrs.(!j);
              bs := !bs + sstrs.(!j)
            done
          done)
  | Indexed { gidx; sidx } -> (
      match p.tw with
      | None ->
          let ix1 = vk.Vcodelet.ix1 in
          for i = lo to hi - 1 do
            ix1 cs im src gidx (i * r) dst sidx (i * r)
          done
      | Some tw ->
          let ix1_tw = vk.Vcodelet.ix1_tw in
          for i = lo to hi - 1 do
            ix1_tw cs im src gidx (i * r) dst sidx (i * r) tw (i * r)
          done)

let run_pass_range ctx p ~src ~dst ~lo ~hi =
  match p.split with
  | Some se -> run_split ctx p se ~src ~dst ~lo ~hi
  | None -> run_interleaved ctx p ~src ~dst ~lo ~hi

(* Ping-pong buffer schedule: pass 0 reads [x], the last pass writes [y],
   intermediates alternate tmp_a/tmp_b.  Split accessors so the executors
   can resolve buffers without allocating a tuple. *)
let pass_src t ~x k =
  if k = 0 then x else if (k - 1) land 1 = 0 then t.tmp_a else t.tmp_b

let pass_dst t ~y k =
  if k = Array.length t.passes - 1 then y
  else if k land 1 = 0 then t.tmp_a
  else t.tmp_b

let src_dst_of_pass t ~x ~y k = (pass_src t ~x k, pass_dst t ~y k)

let execute t x y =
  if Array.length x <> 2 * t.n || Array.length y <> 2 * t.n then
    invalid_arg "Plan.execute: wrong vector length";
  let last = Array.length t.passes - 1 in
  for k = 0 to last do
    let p = t.passes.(k) in
    let src = if k = 0 then x else if (k - 1) land 1 = 0 then t.tmp_a else t.tmp_b in
    let dst = if k = last then y else if k land 1 = 0 then t.tmp_a else t.tmp_b in
    run_pass_range t.ctx p ~src ~dst ~lo:0 ~hi:p.count
  done

(* Per-iteration address computation (analysis/simulation path — this
   allocates closures and is not used by the executors). *)
let iter_addresses (p : pass) =
  match p.addr with
  | Strided { suffix; exts; gstrs; sstrs; g0; s0; gl; sl } ->
      let k = Array.length exts in
      fun i ->
        let bg = ref g0 and bs = ref s0 in
        for j = 0 to k - 1 do
          let d = i / suffix.(j + 1) mod exts.(j) in
          bg := !bg + (d * gstrs.(j));
          bs := !bs + (d * sstrs.(j))
        done;
        ((fun l -> !bg + (l * gl)), fun l -> !bs + (l * sl))
  | Indexed { gidx; sidx } ->
      fun i ->
        let base = i * p.radix in
        ((fun l -> gidx.(base + l)), fun l -> sidx.(base + l))

let total_flops t = Array.fold_left (fun acc p -> acc + p.flops) 0 t.passes

let describe t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "plan n=%d%s, %d passes\n" t.n
       (match t.layout with Interleaved -> "" | Split -> " split-re/im")
       (Array.length t.passes));
  Array.iteri
    (fun k p ->
      Buffer.add_string b
        (Printf.sprintf "  pass %d: %-14s count=%-8d %s%s%s%s\n" k
           p.kernel.Codelet.name p.count
           (match p.addr with
           | Strided { exts; _ } ->
               Printf.sprintf "strided[%s]"
                 (String.concat "x"
                    (Array.to_list (Array.map string_of_int exts)))
           | Indexed _ -> "indexed")
           (match p.tw with Some _ -> " +twiddle" | None -> "")
           (match p.par with
           | Some q -> Printf.sprintf " parallel(%d)" q
           | None -> "")
           (match p.split with
           | Some { vk; _ } when vk.Vcodelet.lanes > 1 ->
               Printf.sprintf " vec(%d)" vk.Vcodelet.lanes
           | Some _ -> " planar"
           | None -> "")))
    t.passes;
  Buffer.contents b
