(** IR post-pass: permutation-pass fusion.

    Folds pure data-movement passes (stride permutations, identity-kernel
    copies, standalone diagonals — radix-1 passes with an identity
    kernel) into the gather addressing and load-scale of the following
    computation pass, or — for a trailing pure permutation — into the
    scatter of the preceding pass.  This reproduces at plan level the
    Σ-SPL loop merging the compiler already performs at formula level,
    but works on any pass list, including [explicit_data] compilations
    and hand-built IR.

    Legality conditions are specified in DESIGN.md ("Pass fusion").  A
    data pass that fails them (not full-size, non-bijective scatter,
    out-of-range gather, or a trailing chain carrying a diagonal) is
    emitted as a residual explicit pass: [fuse_data] never changes the
    computed transform. *)

val fuse_data : Ir.t -> Ir.t
(** Fuse away data-movement passes.  The number of eliminated passes is
    added to the {!Spiral_util.Counters} counter
    ["optimize.fused_passes"]. *)

val is_data_pass : Ir.pass -> bool
(** True for radix-1 passes whose kernel is the identity (the passes
    {!fuse_data} targets). *)
