(** IR post-pass: permutation-pass fusion.

    Folds pure data-movement passes (stride permutations, identity-kernel
    copies, standalone diagonals — radix-1 passes with an identity
    kernel) into the gather addressing and load-scale of the following
    computation pass, or — for a trailing pure permutation — into the
    scatter of the preceding pass.  This reproduces at plan level the
    Σ-SPL loop merging the compiler already performs at formula level,
    but works on any pass list, including [explicit_data] compilations
    and hand-built IR.

    Legality conditions are specified in DESIGN.md ("Pass fusion").  A
    data pass that fails them (not full-size, non-bijective scatter,
    out-of-range gather, or a trailing chain carrying a diagonal) is
    emitted as a residual explicit pass: [fuse_data] never changes the
    computed transform. *)

type fusion_claim = {
  src : int option;
      (** Index (into the original pass list) of the pass the output pass
          was derived from; [None] for a residual pass synthesized from
          an unabsorbed data chain. *)
  gchain : int list;
      (** Original data passes composed into the output pass's gather and
          load-scale (forward fusion; or the residual's own content when
          [src = None]), in execution order. *)
  schain : int list;
      (** Original data passes whose inverted permutation was composed
          into the output pass's scatter (backward fusion), in execution
          order.  Always a pure permutation (no diagonal). *)
}
(** What one output pass of {!fuse_data_certified} claims to account
    for.  Concatenating [gchain @ src @ schain] over all claims must
    enumerate the original pass list exactly once, in order — one of the
    obligations the validator discharges. *)

type fusion_cert = {
  original : Ir.t;  (** The pass list before fusion. *)
  fused : Ir.t;  (** The pass list after fusion (what gets executed). *)
  claims : fusion_claim list;  (** One claim per fused pass, in order. *)
}
(** Certificate emitted alongside a fused pass list: everything an
    independent checker needs to replay the composition and verify
    totality, bijectivity and pointwise equality of the rewritten index
    functions (see [Spiral_validate.check_fusion]). *)

val fuse_data : Ir.t -> Ir.t
(** Fuse away data-movement passes.  The number of eliminated passes is
    added to the {!Spiral_util.Counters} counter
    ["optimize.fused_passes"]. *)

val fuse_data_certified : Ir.t -> Ir.t * fusion_cert
(** {!fuse_data} plus the certificate describing every rewrite it
    performed.  [fuse_data] is [fst ∘ fuse_data_certified]. *)

val is_data_pass : Ir.pass -> bool
(** True for radix-1 passes whose kernel is the identity (the passes
    {!fuse_data} targets). *)
