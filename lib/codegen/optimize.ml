open Spiral_util

(* Fusion of pure data-movement passes (stride permutations, identity
   copies, standalone diagonals — the radix-1 passes [explicit_data]
   compilation emits) into the addressing of an adjacent computation
   pass.  A run of data passes is accumulated into a single pending
   permutation + diagonal; a following pass absorbs it into its gather
   (and load-scale), the chain's last pass can absorb a trailing pure
   permutation into its scatter.  Every absorption halves the memory
   traffic the data pass would have caused and removes one pass (and, in
   parallel execution, one barrier).

   Legality (see DESIGN.md):
   - a data pass is fusable only if it covers the whole vector
     ([count = n]) and its scatter is a bijection of [0, n) — then
     "output q = scale(q) · input(perm q)" is well defined;
   - forward fusion rewrites the next pass's gather [g] to [perm ∘ g] and
     multiplies the pending diagonal into its load-scale — always legal;
   - backward fusion rewrites the previous pass's scatter [s] to
     [perm⁻¹ ∘ s]; it requires the pending permutation to be bijective
     and carries no diagonal (codelets have no store-scale hook).

   Anything that fails a check is emitted as a residual explicit pass, so
   the transform is preserved even for exotic hand-built IR. *)

let counter_fused = "optimize.fused_passes"

type fusion_claim = {
  src : int option;
  gchain : int list;
  schain : int list;
}

type fusion_cert = {
  original : Ir.t;
  fused : Ir.t;
  claims : fusion_claim list;
}

(* [perm]: output position q of the pending data chain reads input
   position [perm.(q)], scaled by [scale.(q)] when present.  [idxs]
   records which original passes were composed into the chain (reversed;
   the certificate claims report them in execution order). *)
type pending = {
  perm : int array;
  scale : Complex.t array option;
  par : int option;
  mu : int option;
  vec : int option;
  hint : int list;
  idxs : int list;
}

(* A fused pass inherits the strictest (largest) cache-line tag of its
   constituents, so alignment decisions stay conservative. *)
let merge_mu a b =
  match (a, b) with
  | None, m | m, None -> m
  | Some x, Some y -> Some (max x y)

(* A fused pass keeps the compute side's vector tag; a data-only chain
   keeps any tag of its constituents (they all came from one vectorized
   formula, so widths agree). *)
let merge_vec a b = match (a, b) with None, v | v, None -> v | v, _ -> v

let is_data_pass (p : Ir.pass) =
  p.radix = 1
  && (p.kernel == Codelet.dft 1 || p.kernel.Codelet.name = "copy1")

(* Compose data pass [d] (original index [di]) onto the pending chain:
   returns [None] if [d] is not a full-size pass with bijective scatter
   and in-range gather. *)
let compose n ~di (prev : pending option) (d : Ir.pass) =
  if d.count <> n then None
  else begin
    let inv = Array.make n (-1) in
    let ok = ref true in
    (try
       for i = 0 to n - 1 do
         let s = d.scatter i 0 in
         if s < 0 || s >= n || inv.(s) >= 0 then begin
           ok := false;
           raise Exit
         end;
         inv.(s) <- i
       done
     with Exit -> ());
    if not !ok then None
    else begin
      let pperm, pscale, pmu, pvec, pidxs =
        match prev with
        | None -> (None, None, None, None, [])
        | Some p -> (Some p.perm, p.scale, p.mu, p.vec, p.idxs)
      in
      let perm = Array.make n 0 in
      let scale =
        if d.scale <> None || pscale <> None then
          Some (Array.make n Complex.one)
        else None
      in
      (try
         for q = 0 to n - 1 do
           let i = inv.(q) in
           let g = d.gather i 0 in
           if g < 0 || g >= n then begin
             ok := false;
             raise Exit
           end;
           perm.(q) <- (match pperm with None -> g | Some pp -> pp.(g));
           match scale with
           | None -> ()
           | Some sc ->
               let s1 =
                 match d.scale with Some s -> s i 0 | None -> Complex.one
               in
               let s0 =
                 match pscale with Some ps -> ps.(g) | None -> Complex.one
               in
               sc.(q) <- Complex.mul s1 s0
         done
       with Exit -> ());
      if not !ok then None
      else
        Some
          {
            perm;
            scale;
            par = d.par;
            mu = merge_mu pmu d.mu;
            vec = merge_vec pvec d.vec;
            hint = d.hint;
            idxs = di :: pidxs;
          }
    end
  end

(* Forward fusion: pending chain feeds compute pass [c]. *)
let fuse_forward (c : Ir.pass) (p : pending) : Ir.pass =
  let cg = c.gather in
  let gather i l = p.perm.(cg i l) in
  let scale =
    match p.scale with
    | None -> c.scale
    | Some sc ->
        Some
          (fun i l ->
            let s0 = sc.(cg i l) in
            match c.scale with
            | None -> s0
            | Some s -> Complex.mul (s i l) s0)
  in
  { c with gather; scale; mu = merge_mu c.mu p.mu; vec = merge_vec c.vec p.vec }

(* Backward fusion: pending pure permutation follows the chain's last
   pass [c]; rewrite its scatter through the inverse permutation. *)
let fuse_backward n (c : Ir.pass) (p : pending) : Ir.pass option =
  match p.scale with
  | Some _ -> None
  | None ->
      let pinv = Array.make n (-1) in
      let ok = ref true in
      (try
         for q = 0 to n - 1 do
           let s = p.perm.(q) in
           if pinv.(s) >= 0 then begin
             ok := false;
             raise Exit
           end;
           pinv.(s) <- q
         done
       with Exit -> ());
      if not !ok then None
      else begin
        let cs = c.scatter in
        Some
          {
            c with
            scatter = (fun i l -> pinv.(cs i l));
            mu = merge_mu c.mu p.mu;
            vec = merge_vec c.vec p.vec;
          }
      end

let residual n (p : pending) : Ir.pass =
  let perm = p.perm in
  {
    Ir.count = n;
    radix = 1;
    par = p.par;
    mu = p.mu;
    vec = p.vec;
    kernel = Codelet.dft 1;
    gather = (fun i _l -> perm.(i));
    scatter = (fun i _l -> i);
    scale = Option.map (fun sc i (_l : int) -> sc.(i)) p.scale;
    hint = p.hint;
  }

let fuse_data_certified (ir : Ir.t) : Ir.t * fusion_cert =
  let n = ir.n in
  (* reversed (pass, claim) pairs: each claim names the original passes
     the output pass accounts for, so the validator can replay the
     composition independently *)
  let out = ref [] in
  let pending = ref None in
  let flush () =
    match !pending with
    | None -> ()
    | Some p ->
        out :=
          (residual n p, { src = None; gchain = List.rev p.idxs; schain = [] })
          :: !out;
        pending := None
  in
  List.iteri
    (fun i (p : Ir.pass) ->
      if is_data_pass p then
        match compose n ~di:i !pending p with
        | Some pd -> pending := Some pd
        | None ->
            flush ();
            out := (p, { src = Some i; gchain = []; schain = [] }) :: !out
      else begin
        match !pending with
        | Some pd ->
            out :=
              ( fuse_forward p pd,
                { src = Some i; gchain = List.rev pd.idxs; schain = [] } )
              :: !out;
            pending := None
        | None -> out := (p, { src = Some i; gchain = []; schain = [] }) :: !out
      end)
    ir.passes;
  (match (!pending, !out) with
  | None, _ -> ()
  | Some pd, (last, lc) :: rest -> (
      match fuse_backward n last pd with
      | Some last' ->
          out := (last', { lc with schain = List.rev pd.idxs }) :: rest;
          pending := None
      | None -> flush ())
  | Some _, [] -> flush ());
  let items = List.rev !out in
  let passes = List.map fst items in
  let fused = List.length ir.passes - List.length passes in
  if fused > 0 then Counters.incr ~by:fused counter_fused;
  let fir = { ir with passes } in
  (fir, { original = ir; fused = fir; claims = List.map snd items })

let fuse_data (ir : Ir.t) : Ir.t = fst (fuse_data_certified ir)
