(** C code generation from compiled plans: the textual backend
    demonstrating that the IR is real generated code, not an interpreter.

    The emitted translation unit is self-contained C99: static twiddle and
    index tables, unrolled codelet functions for the small radices, one
    function per pass, and a [main] that checks the transform against a
    naive O(n²) DFT and times it.  Parallel passes are emitted as

    - [`OpenMP]: [#pragma omp parallel for] worksharing loops (the paper's
      OpenMP backend);
    - [`Pthreads]: a persistent worker pool with a sense-reversing spin
      barrier between passes (the paper's low-overhead pthreads backend);
    - [`None]: sequential loops.

    The result compiles with [gcc -O2 -fopenmp] / [-pthread]; the test
    suite does exactly that when a C compiler is available. *)

val to_c :
  ?backend:[ `OpenMP | `Pthreads | `None ] ->
  ?fname:string ->
  Plan.t ->
  string
(** [to_c plan] is the C source text.  [fname] names the transform
    function (default [dft_<n>]).  Default backend: [`OpenMP] when the plan
    has parallel passes, [`None] otherwise. *)
