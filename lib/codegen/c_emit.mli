(** C code generation from compiled plans: the textual backend
    demonstrating that the IR is real generated code, not an interpreter.

    The emitted translation unit is self-contained C99: static twiddle and
    index tables, unrolled codelet functions for the small radices, one
    function per pass, and a [main] that checks the transform against a
    naive O(n²) DFT and times it.  Parallel passes are emitted as

    - [`OpenMP]: [#pragma omp parallel for] worksharing loops (the paper's
      OpenMP backend);
    - [`Pthreads]: a persistent worker pool with a sense-reversing spin
      barrier between passes (the paper's low-overhead pthreads backend);
    - [`None]: sequential loops.

    In SIMD mode ([simd]), passes carrying a [vec(ν)] tag whose
    materialized strides expose a VL-aligned memory-contiguous lane
    level are emitted as intrinsic vector code — vector loads/stores,
    in-register twiddle application from lane-major tables, and vector
    codelets built on a small per-ISA macro layer — composed with the
    same OpenMP/pthreads worksharing, so smp × vec runs as one
    translation unit.  Passes whose lane level is contiguous on only one
    side (the in-register shuffle stages trade contiguity between gather
    and scatter) vectorize that side and lane-unpack the other; the rest
    fall back to the scalar emission.

    The result compiles with [gcc -O2 -fopenmp] / [-pthread]; add
    [-mavx2] for [`AVX2] (SSE2 is baseline on x86-64, [`NEON] needs an
    AArch64 target, [`Generic] uses GCC/Clang vector extensions only).
    The test suite does exactly that when a C compiler is available. *)

type simd = [ `SSE2 | `AVX2 | `NEON | `Generic ]

val simd_vl : simd -> int
(** Complex elements per vector register: 2 for [`AVX2]/[`Generic]
    (256-bit), 1 for [`SSE2]/[`NEON] (128-bit — re and im still move in
    one op). *)

val to_c :
  ?backend:[ `OpenMP | `Pthreads | `None ] ->
  ?simd:simd ->
  ?fname:string ->
  ?dims:int * int ->
  Plan.t ->
  string
(** [to_c plan] is the C source text.  [fname] names the transform
    function (default [dft_<n>]).  Default backend: [`OpenMP] when the plan
    has parallel passes, [`None] otherwise.  [simd] (default off) selects
    the SIMD instruction set for vec-tagged passes.  [dims = (rows, cols)]
    declares the plan a row-major 2-D transform: the emitted [main]
    self-checks against the direct O((RC)²) 2-D definition instead of the
    1-D one, and the default [fname] becomes [dft2d_<R>x<C>].
    @raise Invalid_argument if [rows·cols ≠ plan.n]. *)
